"""Full-batch trainer (paper section V-D).

"The Adam algorithm is used as the optimizer with a learning rate of 0.01.
Since our modeling is designed in a personalized approach, each
individual's data is processed in a single batch, and training is iterated
over 300 epochs."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor, get_default_dtype, mse, no_grad
from ..data.windows import WindowSet
from ..models.base import Forecaster
from ..optim import Adam, clip_grad_norm
from .history import TrainingHistory

__all__ = ["TrainerConfig", "Trainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Paper defaults: Adam, lr 0.01, 300 epochs, full batch."""

    epochs: int = 300
    learning_rate: float = 0.01
    grad_clip: float = 5.0
    weight_decay: float = 0.0

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValueError("grad_clip must be positive or None")


class Trainer:
    """Trains one forecaster on one individual's window set."""

    def __init__(self, config: TrainerConfig | None = None):
        self.config = config if config is not None else TrainerConfig()

    def fit(self, model: Forecaster, windows: WindowSet) -> TrainingHistory:
        """Full-batch training; returns the per-epoch loss history."""
        dtype = get_default_dtype()
        inputs = Tensor(windows.inputs.astype(dtype))
        targets = windows.targets.astype(dtype)
        optimizer = Adam(model.parameters(), lr=self.config.learning_rate,
                         weight_decay=self.config.weight_decay)
        history = TrainingHistory()
        model.train()
        for _ in range(self.config.epochs):
            optimizer.zero_grad()
            loss = mse(model(inputs), targets)
            loss.backward()
            if self.config.grad_clip is not None:
                clip_grad_norm(model.parameters(), self.config.grad_clip)
            optimizer.step()
            history.record(loss.item())
        return history

    @staticmethod
    def evaluate(model: Forecaster, windows: WindowSet) -> float:
        """Test-set MSE over all variables and time points (paper eq. 1)."""
        dtype = get_default_dtype()
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                prediction = model(Tensor(windows.inputs.astype(dtype))).data
        finally:
            model.train(was_training)
        diff = prediction - windows.targets.astype(dtype)
        return float(np.mean(diff.astype(np.float64) ** 2))

    @staticmethod
    def evaluate_per_variable(model: Forecaster, windows: WindowSet) -> np.ndarray:
        """Per-variable test MSE (paper section VII-C's open question)."""
        from ..evaluation.per_variable import per_variable_mse

        prediction = model.predict(windows.inputs)
        return per_variable_mse(windows.targets, prediction)
