"""Full-batch training engine (paper section V-D).

"The Adam algorithm is used as the optimizer with a learning rate of 0.01.
Since our modeling is designed in a personalized approach, each
individual's data is processed in a single batch, and training is iterated
over 300 epochs."

The loop itself is an event-driven engine: :meth:`Trainer.fit` emits
``on_fit_start`` / ``on_epoch_start`` / ``on_after_backward`` /
``on_epoch_end`` / ``on_fit_end`` events to a list of
:class:`~repro.training.callbacks.Callback` instances, any of which may
request a stop.  With no callbacks configured (the default), the engine
reproduces the seed trainer's fixed-epoch loop bit-identically — grad
clipping, the only behavior the seed loop hardcoded, is installed as an
implicit :class:`~repro.training.callbacks.GradClipCallback` from
``TrainerConfig.grad_clip``.

The optimizer and training loss are configured by registry *name*
(``TrainerConfig.optimizer`` / ``TrainerConfig.loss``) so they stay
picklable inside cohort cells; the defaults (``"adam"``, ``"mse"``)
construct exactly what the seed loop hardcoded.
"""

from __future__ import annotations

import types
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..autodiff import Tensor, get_default_dtype, huber, mae, mse, no_grad
from ..data.windows import WindowSet
from ..models.base import Forecaster
from ..optim import OPTIMIZER_REGISTRY, get_optimizer
from .callbacks import (Callback, CallbackSpec, GradClipCallback,
                        TrainingContext, build_callbacks)
from .history import TrainingHistory

__all__ = ["TrainerConfig", "Trainer", "LOSSES"]

#: Training/evaluation losses addressable by name from a picklable config.
LOSSES: dict[str, Callable] = {
    "mse": mse,
    "mae": mae,
    "huber": huber,
}


@dataclass(frozen=True)
class TrainerConfig:
    """Paper defaults: Adam, lr 0.01, 300 epochs, full batch.

    ``callbacks`` holds declarative
    :class:`~repro.training.callbacks.CallbackSpec` records (picklable, so
    they travel inside :class:`~repro.training.parallel.CohortCell` to
    worker processes); it is empty by default, keeping the paper-faithful
    fixed-epoch replication unchanged.

    ``optimizer`` / ``optimizer_kwargs`` select the optimizer from
    :data:`repro.optim.OPTIMIZER_REGISTRY` by name; ``loss`` selects the
    training objective from :data:`LOSSES`.  ``optimizer_kwargs`` accepts
    a mapping or sorted key/value pairs and is normalized to a tuple so
    the config stays hashable and picklable.

    ``weight_decay=None`` (the default) means "unset": the optimizer runs
    without decay, but model-specific defaults may fill it in —
    :func:`~repro.training.personalized.run_individual` applies MTGNN's
    canonical 1e-4 only when the field is ``None``.  An explicit ``0.0``
    is an affirmative "no decay" and is never overridden (the no-decay
    ablation).

    ``jit=True`` turns on trace-capture replay
    (:class:`repro.autodiff.trace.EpochJIT`): epochs 1–2 run eagerly and
    are recorded, and if they are structurally identical the remaining
    epochs replay a fused compiled plan — bit-identical to the eager loop,
    falling back to eager automatically whenever the graph is not
    replayable (data-dependent ``where`` masks, unsupported ops, graph
    changes between epochs).
    """

    epochs: int = 300
    learning_rate: float = 0.01
    grad_clip: float = 5.0
    weight_decay: float | None = None
    optimizer: str = "adam"
    optimizer_kwargs: tuple = ()
    loss: str = "mse"
    callbacks: tuple[CallbackSpec, ...] = ()
    jit: bool = False

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValueError("grad_clip must be positive or None")
        if self.weight_decay is not None and self.weight_decay < 0:
            raise ValueError("weight_decay must be >= 0 or None (unset)")
        if self.optimizer not in OPTIMIZER_REGISTRY:
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; registered: "
                f"{sorted(OPTIMIZER_REGISTRY)}")
        kwargs = self.optimizer_kwargs
        if isinstance(kwargs, dict):
            kwargs = tuple(sorted(kwargs.items()))
        else:
            kwargs = tuple((str(key), value) for key, value in kwargs)
        object.__setattr__(self, "optimizer_kwargs", kwargs)
        if self.loss not in LOSSES:
            raise ValueError(
                f"unknown loss {self.loss!r}; registered: {sorted(LOSSES)}")
        object.__setattr__(self, "callbacks", tuple(self.callbacks))
        for spec in self.callbacks:
            if not isinstance(spec, CallbackSpec):
                raise TypeError(
                    "TrainerConfig.callbacks takes CallbackSpec records "
                    f"(picklable), got {type(spec).__name__}; pass live "
                    "Callback instances to Trainer.fit(callbacks=...) "
                    "instead")


def _evaluate(model: Forecaster, windows: WindowSet) -> float:
    """Test-set MSE over all variables and time points (paper eq. 1)."""
    dtype = get_default_dtype()
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            prediction = model(Tensor(windows.inputs.astype(dtype))).data
    finally:
        model.train(was_training)
    diff = prediction - windows.targets.astype(dtype)
    return float(np.mean(diff.astype(np.float64) ** 2))


def _evaluate_per_variable(model: Forecaster,
                           windows: WindowSet) -> np.ndarray:
    """Per-variable test MSE (paper section VII-C's open question)."""
    from ..evaluation.per_variable import per_variable_mse

    prediction = model.predict(windows.inputs)
    return per_variable_mse(windows.targets, prediction)


class _HybridMethod:
    """Descriptor exposing both call styles of an evaluation method.

    ``trainer.evaluate(model, windows)`` binds the config-aware instance
    implementation; ``Trainer.evaluate(model, windows)`` — the seed repo's
    staticmethod style, still used in docs and downstream code — resolves
    to the legacy static function.  Both see identical arguments, so the
    two styles can no longer drift apart silently.
    """

    def __init__(self, instance_func, static_func):
        self._instance_func = instance_func
        self._static_func = static_func
        self.__doc__ = instance_func.__doc__

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self._static_func
        return types.MethodType(self._instance_func, obj)


class Trainer:
    """Trains one forecaster on one individual's window set."""

    def __init__(self, config: TrainerConfig | None = None):
        self.config = config if config is not None else TrainerConfig()
        #: The :class:`~repro.autodiff.trace.EpochJIT` of the most recent
        #: ``fit`` when ``config.jit`` is on (``None`` otherwise) — lets
        #: tests and the profile CLI inspect replay counts and fallbacks.
        self.last_jit = None

    def _assemble_callbacks(self, extra) -> list[Callback]:
        """Implicit grad clip, then config specs, then live extras."""
        stack: list[Callback] = []
        if self.config.grad_clip is not None:
            stack.append(GradClipCallback(self.config.grad_clip))
        stack.extend(build_callbacks(self.config.callbacks))
        stack.extend(extra or ())
        return stack

    @staticmethod
    def _hooks(stack: list[Callback], name: str) -> list:
        """Bound hook methods of the callbacks that actually override one.

        Dispatching to pre-filtered bound methods keeps the per-epoch cost
        of the event loop negligible (< 2 % — see ``bench_engine.py``)
        even though every epoch crosses five hook points.
        """
        base = getattr(Callback, name)
        return [getattr(cb, name) for cb in stack
                if getattr(type(cb), name) is not base]

    def _make_optimizer(self, model: Forecaster):
        """Build the configured optimizer through the registry.

        ``weight_decay=None`` (the "unset" sentinel) reaches the optimizer
        as a plain 0.0 — optimizers only know concrete decay strengths.
        """
        weight_decay = self.config.weight_decay
        return get_optimizer(self.config.optimizer, model.parameters(),
                             lr=self.config.learning_rate,
                             weight_decay=0.0 if weight_decay is None
                             else weight_decay,
                             **dict(self.config.optimizer_kwargs))

    def fit(self, model: Forecaster, windows: WindowSet,
            callbacks: list[Callback] | None = None) -> TrainingHistory:
        """Full-batch training; returns the per-epoch telemetry history.

        ``callbacks`` appends live instances after the ones built from
        ``config.callbacks`` — handy for in-process observers (progress
        bars, tests); cross-process configuration must use specs.
        """
        dtype = get_default_dtype()
        inputs = Tensor(windows.inputs.astype(dtype))
        targets = windows.targets.astype(dtype)
        optimizer = self._make_optimizer(model)
        loss_fn = LOSSES[self.config.loss]
        history = TrainingHistory()
        stack = self._assemble_callbacks(callbacks)
        ctx = TrainingContext(model=model, optimizer=optimizer,
                              config=self.config, history=history,
                              max_epochs=self.config.epochs)
        epoch_start = self._hooks(stack, "on_epoch_start")
        after_backward = self._hooks(stack, "on_after_backward")
        epoch_end = self._hooks(stack, "on_epoch_end")
        jit = None
        if self.config.jit:
            from functools import partial

            from ..autodiff.trace import EpochJIT

            # The replay tail mirrors the eager post-backward sequence:
            # publish the loss, run the after-backward hooks (grad clip
            # reads the plan-bound ``p.grad`` arrays), then step.  The
            # late-bound ``optimizer.step`` lambda keeps profiler patching
            # and lr-schedule changes effective during replay.
            def _publish_loss() -> None:
                ctx.loss = jit.loss_value()

            jit = EpochJIT(tail=[_publish_loss,
                                 *(partial(hook, ctx)
                                   for hook in after_backward),
                                 lambda: optimizer.step()])
        self.last_jit = jit
        was_training = model.training
        model.train()
        try:
            for hook in self._hooks(stack, "on_fit_start"):
                hook(ctx)
            for epoch in range(self.config.epochs):
                ctx.epoch = epoch
                ctx.grad_norm = None
                for hook in epoch_start:
                    hook(ctx)
                if jit is not None and jit.replay():
                    # Forward+backward+hooks+step ran as the compiled plan.
                    history.record(ctx.loss, grad_norm=ctx.grad_norm,
                                   lr=optimizer.lr)
                    for hook in epoch_end:
                        hook(ctx)
                    if ctx.stop_requested:
                        break
                    continue
                optimizer.zero_grad()
                if jit is not None and jit.wants_capture:
                    with jit.capture():
                        loss = loss_fn(model(inputs), targets)
                        loss.backward()
                    jit.seal(loss)
                else:
                    loss = loss_fn(model(inputs), targets)
                    loss.backward()
                ctx.loss = loss.item()
                for hook in after_backward:
                    hook(ctx)
                optimizer.step()
                history.record(ctx.loss, grad_norm=ctx.grad_norm,
                               lr=optimizer.lr)
                for hook in epoch_end:
                    hook(ctx)
                if ctx.stop_requested:
                    break
        finally:
            # on_fit_end must run even when an epoch raised (e.g. the
            # sanitizer aborting on a non-finite gradient): callbacks use
            # it to release global state such as the anomaly-mode flag.
            try:
                for hook in self._hooks(stack, "on_fit_end"):
                    hook(ctx)
            finally:
                model.train(was_training)
        history.stop_reason = ctx.stop_reason
        return history

    def _evaluate_instance(self, model: Forecaster,
                           windows: WindowSet) -> float:
        """Test error under this trainer's configured ``loss``.

        With the default ``loss="mse"`` this delegates to the legacy
        static implementation (float64 accumulation, paper eq. 1) and is
        bit-identical to ``Trainer.evaluate(model, windows)``.
        """
        if self.config.loss == "mse":
            return _evaluate(model, windows)
        dtype = get_default_dtype()
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                prediction = model(Tensor(windows.inputs.astype(dtype)))
                value = LOSSES[self.config.loss](
                    prediction, windows.targets.astype(dtype))
        finally:
            model.train(was_training)
        return float(value.item())

    def _evaluate_per_variable_instance(self, model: Forecaster,
                                        windows: WindowSet) -> np.ndarray:
        """Per-variable test MSE (paper section VII-C's open question)."""
        return _evaluate_per_variable(model, windows)

    #: Instance call honors ``TrainerConfig``; class-attribute access keeps
    #: the seed repo's staticmethod form working unchanged.
    evaluate = _HybridMethod(_evaluate_instance, _evaluate)
    evaluate_per_variable = _HybridMethod(_evaluate_per_variable_instance,
                                          _evaluate_per_variable)
