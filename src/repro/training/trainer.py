"""Full-batch training engine (paper section V-D).

"The Adam algorithm is used as the optimizer with a learning rate of 0.01.
Since our modeling is designed in a personalized approach, each
individual's data is processed in a single batch, and training is iterated
over 300 epochs."

The loop itself is an event-driven engine: :meth:`Trainer.fit` emits
``on_fit_start`` / ``on_epoch_start`` / ``on_after_backward`` /
``on_epoch_end`` / ``on_fit_end`` events to a list of
:class:`~repro.training.callbacks.Callback` instances, any of which may
request a stop.  With no callbacks configured (the default), the engine
reproduces the seed trainer's fixed-epoch loop bit-identically — grad
clipping, the only behavior the seed loop hardcoded, is installed as an
implicit :class:`~repro.training.callbacks.GradClipCallback` from
``TrainerConfig.grad_clip``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor, get_default_dtype, mse, no_grad
from ..data.windows import WindowSet
from ..models.base import Forecaster
from ..optim import Adam
from .callbacks import (Callback, CallbackSpec, GradClipCallback,
                        TrainingContext, build_callbacks)
from .history import TrainingHistory

__all__ = ["TrainerConfig", "Trainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Paper defaults: Adam, lr 0.01, 300 epochs, full batch.

    ``callbacks`` holds declarative
    :class:`~repro.training.callbacks.CallbackSpec` records (picklable, so
    they travel inside :class:`~repro.training.parallel.CohortCell` to
    worker processes); it is empty by default, keeping the paper-faithful
    fixed-epoch replication unchanged.
    """

    epochs: int = 300
    learning_rate: float = 0.01
    grad_clip: float = 5.0
    weight_decay: float = 0.0
    callbacks: tuple[CallbackSpec, ...] = ()

    def __post_init__(self):
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValueError("grad_clip must be positive or None")
        object.__setattr__(self, "callbacks", tuple(self.callbacks))
        for spec in self.callbacks:
            if not isinstance(spec, CallbackSpec):
                raise TypeError(
                    "TrainerConfig.callbacks takes CallbackSpec records "
                    f"(picklable), got {type(spec).__name__}; pass live "
                    "Callback instances to Trainer.fit(callbacks=...) "
                    "instead")


class Trainer:
    """Trains one forecaster on one individual's window set."""

    def __init__(self, config: TrainerConfig | None = None):
        self.config = config if config is not None else TrainerConfig()

    def _assemble_callbacks(self, extra) -> list[Callback]:
        """Implicit grad clip, then config specs, then live extras."""
        stack: list[Callback] = []
        if self.config.grad_clip is not None:
            stack.append(GradClipCallback(self.config.grad_clip))
        stack.extend(build_callbacks(self.config.callbacks))
        stack.extend(extra or ())
        return stack

    @staticmethod
    def _hooks(stack: list[Callback], name: str) -> list:
        """Bound hook methods of the callbacks that actually override one.

        Dispatching to pre-filtered bound methods keeps the per-epoch cost
        of the event loop negligible (< 2 % — see ``bench_engine.py``)
        even though every epoch crosses five hook points.
        """
        base = getattr(Callback, name)
        return [getattr(cb, name) for cb in stack
                if getattr(type(cb), name) is not base]

    def fit(self, model: Forecaster, windows: WindowSet,
            callbacks: list[Callback] | None = None) -> TrainingHistory:
        """Full-batch training; returns the per-epoch telemetry history.

        ``callbacks`` appends live instances after the ones built from
        ``config.callbacks`` — handy for in-process observers (progress
        bars, tests); cross-process configuration must use specs.
        """
        dtype = get_default_dtype()
        inputs = Tensor(windows.inputs.astype(dtype))
        targets = windows.targets.astype(dtype)
        optimizer = Adam(model.parameters(), lr=self.config.learning_rate,
                         weight_decay=self.config.weight_decay)
        history = TrainingHistory()
        stack = self._assemble_callbacks(callbacks)
        ctx = TrainingContext(model=model, optimizer=optimizer,
                              config=self.config, history=history,
                              max_epochs=self.config.epochs)
        epoch_start = self._hooks(stack, "on_epoch_start")
        after_backward = self._hooks(stack, "on_after_backward")
        epoch_end = self._hooks(stack, "on_epoch_end")
        was_training = model.training
        model.train()
        try:
            for hook in self._hooks(stack, "on_fit_start"):
                hook(ctx)
            for epoch in range(self.config.epochs):
                ctx.epoch = epoch
                ctx.grad_norm = None
                for hook in epoch_start:
                    hook(ctx)
                optimizer.zero_grad()
                loss = mse(model(inputs), targets)
                loss.backward()
                ctx.loss = loss.item()
                for hook in after_backward:
                    hook(ctx)
                optimizer.step()
                history.record(ctx.loss, grad_norm=ctx.grad_norm,
                               lr=optimizer.lr)
                for hook in epoch_end:
                    hook(ctx)
                if ctx.stop_requested:
                    break
        finally:
            # on_fit_end must run even when an epoch raised (e.g. the
            # sanitizer aborting on a non-finite gradient): callbacks use
            # it to release global state such as the anomaly-mode flag.
            try:
                for hook in self._hooks(stack, "on_fit_end"):
                    hook(ctx)
            finally:
                model.train(was_training)
        history.stop_reason = ctx.stop_reason
        return history

    @staticmethod
    def evaluate(model: Forecaster, windows: WindowSet) -> float:
        """Test-set MSE over all variables and time points (paper eq. 1)."""
        dtype = get_default_dtype()
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                prediction = model(Tensor(windows.inputs.astype(dtype))).data
        finally:
            model.train(was_training)
        diff = prediction - windows.targets.astype(dtype)
        return float(np.mean(diff.astype(np.float64) ** 2))

    @staticmethod
    def evaluate_per_variable(model: Forecaster, windows: WindowSet) -> np.ndarray:
        """Per-variable test MSE (paper section VII-C's open question)."""
        from ..evaluation.per_variable import per_variable_mse

        prediction = model.predict(windows.inputs)
        return per_variable_mse(windows.targets, prediction)
