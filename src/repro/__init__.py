"""repro — reproduction of "Exploiting Individual Graph Structures to
Enhance Ecological Momentary Assessment (EMA) Forecasting" (ICDE 2024).

The package is layered bottom-up:

* :mod:`repro.autodiff` — reverse-mode autodiff on numpy (PyTorch substitute)
* :mod:`repro.nn` / :mod:`repro.optim` — layers and optimizers
* :mod:`repro.graphs` — similarity-based / random / learned graph construction
* :mod:`repro.data` — synthetic EMA cohort + preprocessing + windowing
* :mod:`repro.models` — LSTM, A3TGCN, ASTGCN, MTGNN forecasters
* :mod:`repro.training` / :mod:`repro.evaluation` — personalized training, MSE
* :mod:`repro.experiments` — Experiments A/B/C (Table II, Table III, Fig. 3)
* :mod:`repro.serving` — versioned model store + batched forecast serving

The stable programmatic surface is :mod:`repro.api` (re-exported here):
``fit_cohort`` / ``CohortHandle`` / ``load`` cover fit → save → load →
forecast; everything deeper is importable but may be rearranged between
minor versions.
"""

__version__ = "1.0.0"

from . import api
from .api import CohortHandle, ModelStore, fit_cohort, load

__all__ = ["__version__", "api", "fit_cohort", "load", "CohortHandle",
           "ModelStore"]
