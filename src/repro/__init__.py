"""repro — reproduction of "Exploiting Individual Graph Structures to
Enhance Ecological Momentary Assessment (EMA) Forecasting" (ICDE 2024).

The package is layered bottom-up:

* :mod:`repro.autodiff` — reverse-mode autodiff on numpy (PyTorch substitute)
* :mod:`repro.nn` / :mod:`repro.optim` — layers and optimizers
* :mod:`repro.graphs` — similarity-based / random / learned graph construction
* :mod:`repro.data` — synthetic EMA cohort + preprocessing + windowing
* :mod:`repro.models` — LSTM, A3TGCN, ASTGCN, MTGNN forecasters
* :mod:`repro.training` / :mod:`repro.evaluation` — personalized training, MSE
* :mod:`repro.experiments` — Experiments A/B/C (Table II, Table III, Fig. 3)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
