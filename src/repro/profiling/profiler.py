"""Op-level profiler for the numpy autodiff engine.

The profiler is a context manager that, while active, patches the public
``Tensor`` op methods, ``Tensor.backward``, ``Module.__call__`` and the
registered optimizer ``step``/``zero_grad`` with thin timing wrappers, and
installs the per-node backward probe exposed by
:func:`repro.autodiff.tensor.set_backward_op_hook`.  All patches are
restored on exit, so a process that never profiles pays nothing and a
process that did profile returns to the unpatched classes.

Self-time accounting uses an explicit span stack: each closing span
subtracts the durations of the spans nested inside it, so a composite op
(``mean`` = ``sum`` + ``__truediv__``) or a module calling submodules is
charged only for its own work.  Summing self-times therefore attributes
wall-clock exactly once, which is what makes the ``>= 95%% coverage``
acceptance check meaningful.

Bit-identity: the wrappers call the original bound methods with unchanged
arguments and return their results untouched — a profiled fit computes
exactly the same floats as an unprofiled one (asserted in
``tests/profiling``).
"""

from __future__ import annotations

from time import perf_counter

from ..autodiff import tensor as _tensor_mod
from ..autodiff.tensor import Tensor
from ..nn.module import Module
from .report import OpStat, ProfileReport

__all__ = ["Profiler", "profile", "active_profiler"]

#: Every public differentiable Tensor method patched while profiling.
#: ``__radd__`` / ``__rmul__`` are class-dict aliases of ``__add__`` /
#: ``__mul__`` but are patched under their own names so reflected calls
#: show up as themselves.
_TENSOR_OPS = (
    "__add__", "__radd__", "__neg__", "__sub__", "__rsub__",
    "__mul__", "__rmul__", "__truediv__", "__rtruediv__", "__pow__",
    "__matmul__", "__rmatmul__", "__getitem__",
    "exp", "log", "sqrt", "tanh", "sigmoid", "relu", "leaky_relu",
    "abs", "clip", "sum", "mean", "var", "max",
    "reshape", "transpose", "swapaxes", "pad_last", "unfold_last",
)

_ACTIVE: "Profiler | None" = None


def active_profiler() -> "Profiler | None":
    """The currently entered :class:`Profiler`, or ``None``."""
    return _ACTIVE


def _wrap_op(name: str, original):
    def profiled(*args, **kwargs):
        prof = _ACTIVE
        if prof is None:
            return original(*args, **kwargs)
        start = prof._begin()
        try:
            out = original(*args, **kwargs)
        except BaseException:
            prof._end("op", name, "forward", start, 0)
            raise
        nbytes = out._data.nbytes if isinstance(out, Tensor) else 0
        prof._end("op", name, "forward", start, nbytes)
        return out

    profiled.__name__ = name
    profiled.__qualname__ = f"Tensor.{name}"
    profiled.__wrapped__ = original
    return profiled


def _wrap_module_call(original):
    def profiled(self, *args, **kwargs):
        prof = _ACTIVE
        if prof is None:
            return original(self, *args, **kwargs)
        name = type(self).__name__
        start = prof._begin()
        try:
            out = original(self, *args, **kwargs)
        except BaseException:
            prof._end("module", name, "forward", start, 0)
            raise
        nbytes = out._data.nbytes if isinstance(out, Tensor) else 0
        prof._end("module", name, "forward", start, nbytes)
        return out

    profiled.__wrapped__ = original
    return profiled


def _wrap_backward(original):
    def profiled(self, grad=None):
        prof = _ACTIVE
        if prof is None:
            return original(self, grad)
        start = prof._begin()
        try:
            return original(self, grad)
        finally:
            prof._end("autodiff", "backward", "backward", start, 0)

    profiled.__wrapped__ = original
    return profiled


def _wrap_optimizer_method(name: str, original):
    def profiled(self, *args, **kwargs):
        prof = _ACTIVE
        if prof is None:
            return original(self, *args, **kwargs)
        start = prof._begin()
        try:
            return original(self, *args, **kwargs)
        finally:
            prof._end("optimizer", name, "optimizer", start, 0)

    profiled.__wrapped__ = original
    return profiled


class Profiler:
    """Records per-op / per-module wall-clock while entered.

    Parameters
    ----------
    trace:
        Keep individual span events for Chrome-trace export.  Aggregated
        stats are always collected; disabling the trace only drops the
        per-event timeline.
    max_events:
        Cap on retained trace events (overflow is counted, not stored).
    """

    def __init__(self, *, trace: bool = True, max_events: int = 200_000):
        self._trace = bool(trace)
        self._max_events = int(max_events)
        self._saved: list[tuple[type, str, object]] = []
        self._entered = False
        self.reset()

    def reset(self) -> None:
        """Drop all recorded data (not allowed while entered)."""
        if self._entered:
            raise RuntimeError("cannot reset() an active Profiler")
        # (kind, name, phase) -> [count, self_seconds, total_seconds, nbytes]
        self._stats: dict[tuple[str, str, str], list] = {}
        # phase name -> [count, seconds]
        self._phases: dict[str, list] = {}
        self._events: list[tuple[str, str, float, float]] = []
        self._dropped_events = 0
        self._stack: list[float] = []
        self._origin = 0.0

    # ------------------------------------------------------------------
    # Span bookkeeping (called from the patched methods)
    # ------------------------------------------------------------------
    def _begin(self) -> float:
        self._stack.append(0.0)
        return perf_counter()

    def _end(self, kind: str, name: str, phase: str, start: float,
             nbytes: int) -> None:
        end = perf_counter()
        duration = end - start
        child_seconds = self._stack.pop()
        if self._stack:
            self._stack[-1] += duration
        key = (kind, name, phase)
        stat = self._stats.get(key)
        if stat is None:
            self._stats[key] = [1, duration - child_seconds, duration, nbytes]
        else:
            stat[0] += 1
            stat[1] += duration - child_seconds
            stat[2] += duration
            stat[3] += nbytes
        self._push_event(name, f"{kind}.{phase}", start, duration)

    def _add_span(self, kind: str, name: str, phase: str, start: float,
                  seconds: float, nbytes: int) -> None:
        """Record a pre-timed flat span (no nesting).

        Used by the trace-replay plan, which times its calls with one
        ``perf_counter`` read per call boundary and charges each gap —
        including the profiler's own bookkeeping for the previous span —
        to the op that follows it.  Replayed ops are raw numpy calls a
        few microseconds long, so per-span ``_begin``/``_end`` pairs
        would leave their own overhead unattributed and sink the
        coverage metric the replay loop is asserted against.
        """
        if self._stack:
            self._stack[-1] += seconds
        key = (kind, name, phase)
        stat = self._stats.get(key)
        if stat is None:
            self._stats[key] = [1, seconds, seconds, nbytes]
        else:
            stat[0] += 1
            stat[1] += seconds
            stat[2] += seconds
            stat[3] += nbytes
        self._push_event(name, f"{kind}.{phase}", start, seconds)

    def _record_backward_op(self, name: str, start: float, end: float,
                            nbytes: int) -> None:
        """Per-node probe installed via ``set_backward_op_hook``.

        Charges the enclosing ``backward`` span as a child, so the walk's
        own self-time is just graph traversal overhead.
        """
        seconds = end - start
        if self._stack:
            self._stack[-1] += seconds
        key = ("op", name, "backward")
        stat = self._stats.get(key)
        if stat is None:
            self._stats[key] = [1, seconds, seconds, nbytes]
        else:
            stat[0] += 1
            stat[1] += seconds
            stat[2] += seconds
            stat[3] += nbytes
        self._push_event(name, "op.backward", start, seconds)

    def _push_event(self, name: str, category: str, start: float,
                    duration: float) -> None:
        if not self._trace:
            return
        if len(self._events) >= self._max_events:
            self._dropped_events += 1
            return
        self._events.append((name, category, start, duration))

    # ------------------------------------------------------------------
    # Phases (coarse spans the coverage metric is measured against)
    # ------------------------------------------------------------------
    def add_phase(self, name: str, seconds: float,
                  start: float | None = None) -> None:
        """Record ``seconds`` of coarse phase ``name`` (e.g. one epoch)."""
        phase = self._phases.get(name)
        if phase is None:
            self._phases[name] = [1, seconds]
        else:
            phase[0] += 1
            phase[1] += seconds
        if start is not None:
            self._push_event(name, "phase", start, seconds)

    # ------------------------------------------------------------------
    # Context manager: patch / restore
    # ------------------------------------------------------------------
    def __enter__(self) -> "Profiler":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError(
                "a Profiler is already active in this process; profiling "
                "does not nest")
        self._origin = perf_counter()
        self._install()
        _ACTIVE = self
        self._entered = True
        _tensor_mod.set_backward_op_hook(self._record_backward_op)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        _tensor_mod.set_backward_op_hook(None)
        _ACTIVE = None
        self._entered = False
        self._restore()
        return False

    def _patch(self, owner: type, name: str, replacement) -> None:
        self._saved.append((owner, name, owner.__dict__[name]))
        setattr(owner, name, replacement)

    def _install(self) -> None:
        from ..optim.optimizer import Optimizer
        from ..optim.registry import OPTIMIZER_REGISTRY

        try:
            for name in _TENSOR_OPS:
                self._patch(Tensor, name,
                            _wrap_op(name, Tensor.__dict__[name]))
            self._patch(Tensor, "backward",
                        _wrap_backward(Tensor.__dict__["backward"]))
            self._patch(Module, "__call__",
                        _wrap_module_call(Module.__dict__["__call__"]))
            self._patch(Optimizer, "zero_grad",
                        _wrap_optimizer_method(
                            "zero_grad", Optimizer.__dict__["zero_grad"]))
            classes = {factory for factory in OPTIMIZER_REGISTRY.values()
                       if isinstance(factory, type)}
            for cls in sorted(classes, key=lambda c: c.__name__):
                if "step" in cls.__dict__:
                    self._patch(cls, "step",
                                _wrap_optimizer_method(
                                    f"{cls.__name__}.step",
                                    cls.__dict__["step"]))
        except BaseException:
            self._restore()
            raise

    def _restore(self) -> None:
        while self._saved:
            owner, name, original = self._saved.pop()
            setattr(owner, name, original)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def report(self, label: str | None = None) -> ProfileReport:
        """Snapshot the recorded data as a picklable :class:`ProfileReport`."""
        ops = [OpStat(kind, name, phase, count, self_s, total_s, nbytes)
               for (kind, name, phase), (count, self_s, total_s, nbytes)
               in self._stats.items()]
        origin = self._origin
        events = [(name, category, (start - origin) * 1e6, duration * 1e6)
                  for name, category, start, duration in self._events]
        return ProfileReport(
            ops=ops,
            phases={name: (count, seconds)
                    for name, (count, seconds) in self._phases.items()},
            events=events,
            dropped_events=self._dropped_events,
            label=label)


def profile(*, trace: bool = True, max_events: int = 200_000) -> Profiler:
    """Build a :class:`Profiler` for use as a context manager::

        with profile() as prof:
            loss = mse(model(inputs), targets)
            loss.backward()
        print(prof.report().render())
    """
    return Profiler(trace=trace, max_events=max_events)
