"""Profiler-as-callback: attach op-level profiling to any ``Trainer.fit``.

``ProfilerCallback`` is registered in the callback registry as
``'profiler'``, so ``CallbackSpec.make("profiler")`` rides a
``TrainerConfig`` into parallel cohort workers like every other callback.
The finished :class:`~repro.profiling.report.ProfileReport` is stashed on
``history.profile`` — plain picklable data, so it returns from worker
processes inside each ``IndividualResult``.
"""

from __future__ import annotations

from time import perf_counter

from ..training.callbacks import Callback
from .profiler import Profiler

__all__ = ["ProfilerCallback"]


class ProfilerCallback(Callback):
    """Profile every epoch of one fit; report lands on ``history.profile``.

    The profiler is entered at ``on_fit_start`` and exited at
    ``on_fit_end`` — which the engine dispatches from a ``finally`` block,
    so the ``Tensor``/``Module`` patches are removed even when a fit
    raises.

    Parameters
    ----------
    trace:
        Keep per-span events for Chrome-trace export (default on).
    max_events:
        Per-fit cap on retained trace events.
    """

    def __init__(self, trace: bool = True, max_events: int = 100_000):
        self._trace = bool(trace)
        self._max_events = int(max_events)
        self._profiler: Profiler | None = None
        self._epoch_started: float | None = None
        self.report = None

    def on_fit_start(self, ctx) -> None:
        self._profiler = Profiler(trace=self._trace,
                                  max_events=self._max_events)
        self._profiler.__enter__()

    def on_epoch_start(self, ctx) -> None:
        self._epoch_started = perf_counter()

    def on_epoch_end(self, ctx) -> None:
        if self._profiler is None or self._epoch_started is None:
            return
        self._profiler.add_phase("epoch",
                                 perf_counter() - self._epoch_started,
                                 start=self._epoch_started)
        self._epoch_started = None

    def on_fit_end(self, ctx) -> None:
        if self._profiler is None:
            return
        self._profiler.__exit__(None, None, None)
        self.report = self._profiler.report(
            label=type(ctx.model).__name__ if ctx.model is not None else None)
        self._profiler = None
        ctx.history.profile = self.report
