"""Op-level observability for the numpy training stack.

``with profile() as prof`` patches the autodiff/NN/optimizer hot points and
records per-op forward/backward wall-clock, call counts and array bytes;
:class:`ProfileReport` aggregates them into per-op / per-module tables and
exports Chrome ``trace_event`` JSON.  :class:`ProfilerCallback` (registry
name ``'profiler'``) attaches the same machinery to any ``Trainer.fit``,
including fits running in parallel cohort workers.
"""

from .callback import ProfilerCallback
from .profiler import Profiler, active_profiler, profile
from .report import OpStat, ProfileReport, chrome_trace, write_chrome_trace

__all__ = [
    "OpStat",
    "ProfileReport",
    "Profiler",
    "ProfilerCallback",
    "active_profiler",
    "chrome_trace",
    "profile",
    "write_chrome_trace",
]
