"""Aggregated profiling results: tables, merging, Chrome trace export.

A :class:`ProfileReport` is plain data — frozen stat rows plus a flat event
list — so it pickles cleanly and can ride a ``TrainingHistory`` back from a
``ProcessPoolExecutor`` worker (the same route ``CallbackSpec`` results take
in the parallel cohort engine).  Reports from many fits merge into one
cohort-level view, and every report (or list of reports) can be exported as
Chrome ``trace_event`` JSON for ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["OpStat", "ProfileReport", "chrome_trace", "write_chrome_trace"]


@dataclass(frozen=True)
class OpStat:
    """Aggregated timing of one (kind, name, phase) span family.

    ``self_seconds`` excludes time spent inside nested recorded spans (a
    ``mean`` that internally calls ``sum`` and ``__truediv__`` is charged
    only for its own glue), so self-times sum to attributed wall-clock
    without double counting; ``total_seconds`` is inclusive.
    """

    kind: str            # "op" | "module" | "autodiff" | "optimizer"
    name: str            # "__matmul__", "Linear", "backward", "Adam.step", ...
    phase: str           # "forward" | "backward" | "optimizer"
    count: int
    self_seconds: float
    total_seconds: float
    nbytes: int          # bytes of the arrays produced (forward) / grads (backward)


@dataclass
class ProfileReport:
    """Per-op / per-module profile of one (or several merged) fits."""

    ops: list[OpStat] = field(default_factory=list)
    #: phase name -> (count, seconds); "epoch" covers the measured epochs.
    phases: dict[str, tuple[int, float]] = field(default_factory=dict)
    #: flat trace events: (name, category, ts_us, dur_us), ts relative to
    #: the profiler's start.
    events: list[tuple[str, str, float, float]] = field(default_factory=list,
                                                        repr=False)
    dropped_events: int = 0
    label: str | None = None

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def attributed_seconds(self) -> float:
        """Wall-clock attributed to recorded spans (sum of self-times)."""
        return sum(stat.self_seconds for stat in self.ops)

    def measured_seconds(self) -> float:
        """Wall-clock the profiler was accountable for (epoch phases)."""
        epoch = self.phases.get("epoch")
        if epoch is not None:
            return epoch[1]
        return sum(seconds for _, seconds in self.phases.values())

    def coverage(self) -> float:
        """Fraction of measured wall-clock attributed to named spans."""
        measured = self.measured_seconds()
        if measured <= 0.0:
            return 1.0 if self.attributed_seconds() == 0.0 else 0.0
        return min(1.0, self.attributed_seconds() / measured)

    def per_op_table(self, phase: str | None = None) -> list[OpStat]:
        """Tensor-op rows (kind ``"op"``), heaviest self-time first."""
        rows = [stat for stat in self.ops if stat.kind == "op"
                and (phase is None or stat.phase == phase)]
        return sorted(rows, key=lambda stat: stat.self_seconds, reverse=True)

    def per_module_table(self) -> list[OpStat]:
        """Module rows (``Module.__call__`` spans), inclusive-time order."""
        rows = [stat for stat in self.ops if stat.kind == "module"]
        return sorted(rows, key=lambda stat: stat.total_seconds, reverse=True)

    @classmethod
    def merge(cls, reports: Sequence["ProfileReport"],
              label: str | None = None) -> "ProfileReport":
        """Sum many reports (e.g. one per fit) into a cohort-level one.

        Events are *not* concatenated — each source report keeps its own
        timeline; export them together with :func:`chrome_trace`.
        """
        stats: dict[tuple[str, str, str], list] = {}
        phases: dict[str, list] = {}
        dropped = 0
        for report in reports:
            dropped += report.dropped_events
            for stat in report.ops:
                key = (stat.kind, stat.name, stat.phase)
                entry = stats.setdefault(key, [0, 0.0, 0.0, 0])
                entry[0] += stat.count
                entry[1] += stat.self_seconds
                entry[2] += stat.total_seconds
                entry[3] += stat.nbytes
            for name, (count, seconds) in report.phases.items():
                entry = phases.setdefault(name, [0, 0.0])
                entry[0] += count
                entry[1] += seconds
        ops = [OpStat(kind, name, phase, count, self_s, total_s, nbytes)
               for (kind, name, phase), (count, self_s, total_s, nbytes)
               in stats.items()]
        return cls(ops=ops,
                   phases={name: (count, seconds)
                           for name, (count, seconds) in phases.items()},
                   dropped_events=dropped,
                   label=label or f"merged[{len(reports)}]")

    # ------------------------------------------------------------------
    # Rendering / serialization
    # ------------------------------------------------------------------
    def render(self, top: int = 15) -> str:
        """Human-readable per-op and per-module tables."""
        measured = self.measured_seconds()
        lines = [f"profile: {self.label or 'unnamed'}",
                 f"  measured {measured * 1e3:.1f} ms over "
                 f"{self.phases.get('epoch', (0, 0.0))[0]} epochs, "
                 f"attributed {self.attributed_seconds() * 1e3:.1f} ms "
                 f"(coverage {self.coverage() * 100.0:.1f}%)"]

        def fmt(rows, title):
            if not rows:
                return
            lines.append(f"  {title}")
            lines.append(f"    {'name':<22s}{'phase':<10s}{'count':>9s}"
                         f"{'self ms':>10s}{'total ms':>10s}{'MB':>9s}")
            for stat in rows[:top]:
                lines.append(
                    f"    {stat.name:<22s}{stat.phase:<10s}{stat.count:>9d}"
                    f"{stat.self_seconds * 1e3:>10.2f}"
                    f"{stat.total_seconds * 1e3:>10.2f}"
                    f"{stat.nbytes / 1e6:>9.1f}")

        fmt(self.per_op_table(), "per-op (self-time order)")
        fmt(self.per_module_table(), "per-module (inclusive order)")
        other = sorted((stat for stat in self.ops
                        if stat.kind not in ("op", "module")),
                       key=lambda stat: stat.self_seconds, reverse=True)
        fmt(other, "engine (backward walk, optimizer)")
        if self.dropped_events:
            lines.append(f"  ({self.dropped_events} trace events dropped — "
                         f"raise max_events to keep them)")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-serializable summary (no per-event data)."""
        return {
            "label": self.label,
            "measured_seconds": self.measured_seconds(),
            "attributed_seconds": self.attributed_seconds(),
            "coverage": self.coverage(),
            "phases": {name: {"count": count, "seconds": seconds}
                       for name, (count, seconds) in self.phases.items()},
            "ops": [{"kind": stat.kind, "name": stat.name,
                     "phase": stat.phase, "count": stat.count,
                     "self_seconds": stat.self_seconds,
                     "total_seconds": stat.total_seconds,
                     "nbytes": stat.nbytes}
                    for stat in sorted(self.ops,
                                       key=lambda s: s.self_seconds,
                                       reverse=True)],
            "dropped_events": self.dropped_events,
        }

    def to_chrome_trace(self) -> dict:
        """This report's events as a Chrome ``trace_event`` JSON object."""
        return chrome_trace([self])


def chrome_trace(reports: Iterable[ProfileReport]) -> dict:
    """Combine reports into one Chrome trace; one ``pid`` lane per report.

    Timestamps/durations are microseconds (the ``trace_event`` unit),
    relative to each report's own profiler start.
    """
    events: list[dict] = []
    for pid, report in enumerate(reports):
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0,
                       "args": {"name": report.label or f"fit-{pid}"}})
        for name, category, ts_us, dur_us in report.events:
            events.append({"name": name, "cat": category, "ph": "X",
                           "ts": ts_us, "dur": dur_us, "pid": pid, "tid": 0})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, reports: Iterable[ProfileReport]) -> Path:
    """Write :func:`chrome_trace` JSON to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(chrome_trace(list(reports)), handle)
    return path
