"""Anomaly detection for the autodiff engine (``torch.autograd.detect_anomaly``).

Two runtime sanitizers guard the engine's correctness invariants:

* **Version counters** (always on, implemented in :mod:`.tensor`): every
  in-place mutation of a tensor's storage — ``t.data = ...`` rebinding,
  ``t.data -= ...`` augmented assignment, :meth:`Tensor.copy_` — bumps a
  counter shared between a tensor and its :meth:`Tensor.detach` views.
  ``backward()`` compares each graph node's inputs against the versions
  recorded at forward time and raises instead of silently computing
  gradients from stale data.

* **Anomaly mode** (opt-in, this module): inside :func:`detect_anomaly`,
  every graph node additionally records the user stack frame that created
  it, and ``backward()`` checks each op's vector-Jacobian product for
  non-finite values — the first NaN/inf gradient raises an error naming
  the originating op and its forward call site, instead of propagating
  NaNs into every upstream parameter.

Anomaly mode costs a stack walk per op, so it is off by default; the
training engine enables it via
:class:`~repro.training.callbacks.SanitizerCallback` (CLI: ``--sanitize``).
"""

from __future__ import annotations

import contextlib
import linecache
import sys

__all__ = ["detect_anomaly", "is_anomaly_enabled", "user_frame_summary"]

_ANOMALY_MODE = False


@contextlib.contextmanager
def detect_anomaly():
    """Enable anomaly mode for the duration of the ``with`` block.

    Re-entrant: nested contexts keep the mode enabled until the outermost
    one exits.
    """
    global _ANOMALY_MODE
    previous = _ANOMALY_MODE
    _ANOMALY_MODE = True
    try:
        yield
    finally:
        _ANOMALY_MODE = previous


def is_anomaly_enabled() -> bool:
    """Return whether graph nodes currently record creation stack frames."""
    return _ANOMALY_MODE


def user_frame_summary() -> str:
    """One-line summary of the innermost stack frame outside the engine.

    Walks raw frames via ``sys._getframe`` instead of
    ``traceback.extract_stack`` — the latter summarizes the *entire* stack
    (with source lookups) and would dominate the cost of every op executed
    under anomaly mode.
    """
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename.replace("\\", "/")
        if "repro/autodiff/" not in filename:
            line = linecache.getline(filename, frame.f_lineno).strip()
            return (f"{filename}:{frame.f_lineno} in {frame.f_code.co_name}"
                    + (f" — {line}" if line else ""))
        frame = frame.f_back
    return "<unknown call site>"
