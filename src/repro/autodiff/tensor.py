"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate of the whole reproduction: the
paper trains its forecasters with PyTorch / PyTorch Geometric Temporal, which
is unavailable here, so we implement a compact define-by-run autodiff engine
with the same semantics (dynamic graph, ``backward()`` accumulating into
``.grad``).

The engine supports full numpy broadcasting.  Every differentiable operation
records its parents and a closure computing the local vector-Jacobian
product; :meth:`Tensor.backward` walks the graph in reverse topological
order.

Only the operations required by the models in :mod:`repro.models` are
implemented, but each is implemented generally (arbitrary ranks, arbitrary
broadcast patterns) and validated against finite differences in
``tests/autodiff``.
"""

from __future__ import annotations

import contextlib
from time import perf_counter as _perf_counter
from typing import Callable, Iterable, Sequence

import numpy as np

from .anomaly import is_anomaly_enabled, user_frame_summary

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor",
           "set_default_dtype", "get_default_dtype"]

_GRAD_ENABLED = True
_DEFAULT_DTYPE = np.float64


def set_default_dtype(dtype) -> None:
    """Set the float dtype for parameters and promoted arrays.

    ``float64`` (default) keeps finite-difference gradient checks exact;
    ``float32`` roughly halves training time on the memory-bandwidth-bound
    model forward/backward passes and is what the experiment runners use.
    """
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype.kind != "f":
        raise ValueError(f"default dtype must be floating point, got {dtype}")
    _DEFAULT_DTYPE = dtype.type


def get_default_dtype():
    """Current default float dtype (see :func:`set_default_dtype`)."""
    return _DEFAULT_DTYPE


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after a broadcast op.

    Numpy broadcasting may have (a) prepended axes and (b) stretched
    length-1 axes.  The adjoint of broadcasting is summation over exactly
    those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from length 1.
    stretched = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad


def as_tensor(value, dtype=None) -> "Tensor":
    """Coerce ``value`` (Tensor, ndarray, scalar, nested list) to a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


def _defers(other) -> bool:
    """True when a binary op should defer to ``other``'s reflected method.

    Operand types that implement their own tensor arithmetic mark
    themselves with ``__tensor_priority__`` (the shapecheck
    :class:`~repro.analysis.shapecheck.AbstractTensor` does); returning
    ``NotImplemented`` lets Python dispatch ``real op abstract`` to the
    abstract operand instead of crashing inside ``np.asarray``.
    """
    return hasattr(type(other), "__tensor_priority__")


class _Version:
    """Mutation counter for one tensor storage.

    Shared between a tensor and every :meth:`Tensor.detach` view of it, so
    a mutation through *any* alias is visible to the staleness check in
    :meth:`Tensor.backward`.
    """

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0


_OP_NAME_CACHE: dict = {}


def _op_name(backward: Callable) -> str:
    """Human-readable op name for a backward closure.

    Backward closures are defined inside the op that created them, so the
    enclosing function's name is recoverable from ``__qualname__``
    (``'Tensor.__mul__.<locals>.backward'`` -> ``'__mul__'``).  Keyed by
    the (shared, per-definition-site) code object so the parse runs once.
    """
    code = backward.__code__
    name = _OP_NAME_CACHE.get(code)
    if name is None:
        head = backward.__qualname__.split(".<locals>", 1)[0]
        name = head.rsplit(".", 1)[-1]
        _OP_NAME_CACHE[code] = name
    return name


_BACKWARD_OP_HOOK: Callable[[str, float, float, int], None] | None = None


def set_backward_op_hook(hook: Callable | None) -> None:
    """Install a per-op timing probe for :meth:`Tensor.backward`.

    ``hook(op_name, start, end, grad_nbytes)`` is called after each node's
    backward closure runs, with ``time.perf_counter`` stamps.  Pass ``None``
    to uninstall.  This is the profiler's entry point
    (:mod:`repro.profiling`); the disabled path costs one local ``is None``
    test per graph node, so an unprofiled ``backward()`` is unaffected.
    """
    global _BACKWARD_OP_HOOK
    _BACKWARD_OP_HOOK = hook


_TRACE_HOOK: Callable[["Tensor"], None] | None = None


def set_trace_hook(hook: Callable | None) -> None:
    """Install a per-node creation probe on :meth:`Tensor._make`.

    ``hook(out)`` is called for every graph-wired result tensor, in
    creation (i.e. forward execution) order.  This is the capture seam of
    the trace JIT (:mod:`repro.autodiff.trace`); the disabled path costs
    one local ``is None`` test per wired node.  Pass ``None`` to uninstall.
    """
    global _TRACE_HOOK
    _TRACE_HOOK = hook


class Tensor:
    """A numpy array plus gradient bookkeeping.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as a float numpy array (integer input is
        promoted to ``float64``) because every op here is differentiable.
    requires_grad:
        When True, :meth:`backward` accumulates a gradient into
        :attr:`grad` for this tensor.
    """

    #: ``_trace_src`` is deliberately *not* initialised in ``__init__`` —
    #: it exists only on the few tensors the trace JIT annotates (dropout
    #: masks, softmax shifts), and readers use ``getattr(t, "_trace_src",
    #: None)``, so ordinary tensor creation pays nothing for the slot.
    __slots__ = ("_data", "grad", "requires_grad", "_backward", "_parents",
                 "_grad_owned", "_version", "_parent_versions", "_trace",
                 "_trace_src")

    def __init__(self, data, requires_grad: bool = False):
        array = np.asarray(data)
        if array.dtype.kind in "iub":
            array = array.astype(_DEFAULT_DTYPE)
        self._data: np.ndarray = array
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._grad_owned: bool = False
        self._version: _Version = _Version()
        self._parent_versions: tuple[int, ...] | None = None
        self._trace: str | None = None

    @property
    def data(self) -> np.ndarray:
        """The underlying numpy array.

        Assigning to ``data`` (including augmented forms like
        ``t.data -= u``, which rebind after the in-place numpy op) bumps
        the tensor's version counter, so a pending ``backward()`` over a
        graph that used this tensor raises instead of differentiating
        stale values.  Raw in-place writes to the array itself
        (``t.data[i] = v``) bypass the counter — use :meth:`copy_` when a
        graph may be alive.
        """
        return self._data

    @data.setter
    def data(self, value: np.ndarray) -> None:
        self._data = value
        self._version.value += 1

    def copy_(self, value) -> "Tensor":
        """In-place copy into this tensor's storage (dtype-preserving).

        Bumps the shared version counter, so the staleness check catches
        the mutation if a recorded graph still references this storage
        (directly or through a :meth:`detach` view).
        """
        self._data[...] = np.asarray(value)
        self._version.value += 1
        return self

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared memory, not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self.data.item()

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the autodiff graph.

        The detached tensor *aliases* this tensor's storage — no copy is
        made, so in-place writes through either alias are visible to both
        (exactly like ``torch.Tensor.detach``).  Both aliases also share
        one version counter: mutating the detached view via
        :meth:`copy_` or ``.data`` assignment invalidates any recorded
        graph that used the original, and ``backward()`` raises rather
        than differentiating the silently-changed values.  Call
        ``.numpy().copy()`` for an independent snapshot.
        """
        out = Tensor(self._data, requires_grad=False)
        out._version = self._version
        return out

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a result tensor, wiring the graph only when needed."""
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
            out._parent_versions = tuple(p._version.value for p in parents)
            if is_anomaly_enabled():
                out._trace = user_frame_summary()
            if _TRACE_HOOK is not None:
                _TRACE_HOOK(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        # Copy-on-write accumulation: interior nodes may *borrow* the
        # incoming buffer (it is never mutated once handed over), which
        # avoids a full copy per edge on the hot path.  Leaves with
        # persistent grads (Parameters, user inputs) always own a copy so
        # later in-place updates (optimizers, clipping) cannot alias.
        if self.grad is None:
            is_leaf = not self._parents and self._backward is None
            if is_leaf:
                self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
                self._grad_owned = True
            else:
                self.grad = grad if grad.dtype == self.data.dtype \
                    else grad.astype(self.data.dtype)
                self._grad_owned = False
        elif self._grad_owned:
            self.grad += grad
        else:
            self.grad = self.grad + grad
            self._grad_owned = True

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (so calling ``loss.backward()`` on a scalar
        loss behaves like PyTorch).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad)
            if grad.dtype != self.data.dtype:
                # A mismatched seed dtype is a caller bug, symmetric with
                # the shape check below: silently downcasting a float64
                # seed into a float32 graph (or promoting the reverse)
                # would change every accumulated gradient without warning.
                raise TypeError(
                    f"gradient dtype {grad.dtype} does not match tensor "
                    f"dtype {self.data.dtype}; cast the seed explicitly")
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        # Reverse topological order over the dynamic graph.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        anomaly = is_anomaly_enabled()
        if anomaly and not np.all(np.isfinite(grad)):
            raise RuntimeError(
                "detect_anomaly: backward() was seeded with a non-finite "
                "gradient")
        self._accumulate(grad)
        hook = _BACKWARD_OP_HOOK
        # Hot-path memoization: op names are resolved through the
        # per-definition-site cache with one local dict probe per node —
        # the ``__qualname__`` parse in ``_op_name`` runs only on the
        # first-ever encounter of each op's backward code object.
        op_names = _OP_NAME_CACHE
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            if node._parent_versions is not None:
                for index, (parent, expected) in enumerate(
                        zip(node._parents, node._parent_versions)):
                    if parent._version.value != expected:
                        raise RuntimeError(
                            f"autodiff: input {index} of op "
                            f"'{_op_name(node._backward)}' (shape "
                            f"{parent.shape}) was mutated in place after "
                            f"the forward pass (version "
                            f"{parent._version.value}, expected {expected});"
                            " backward() would compute gradients from stale"
                            " values")
            if hook is None:
                node._backward(node.grad)
            else:
                backward_fn = node._backward
                begin = _perf_counter()
                backward_fn(node.grad)
                name = op_names.get(backward_fn.__code__)
                hook(name if name is not None else _op_name(backward_fn),
                     begin, _perf_counter(), node.grad.nbytes)
            if anomaly:
                for index, parent in enumerate(node._parents):
                    if parent.requires_grad and parent.grad is not None \
                            and not np.all(np.isfinite(parent.grad)):
                        where_made = ("" if node._trace is None
                                      else f"\n  op created at {node._trace}")
                        raise RuntimeError(
                            f"detect_anomaly: op '{_op_name(node._backward)}'"
                            f" produced a non-finite gradient for its input "
                            f"{index} (shape {parent.shape}){where_made}")

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        if _defers(other):
            return NotImplemented
        if isinstance(other, (int, float)):
            # Python scalars: keep the array dtype and skip a graph node.
            # The keyword-only default pins the scalar operand onto the
            # closure object (``__kwdefaults__``) where the trace JIT can
            # recover it; the backward math itself never reads it.
            def backward_scalar(grad: np.ndarray, *,
                                _scalar: float = other) -> None:
                self._accumulate(grad)

            return Tensor._make(self.data + other, (self,), backward_scalar)
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        if _defers(other):
            return NotImplemented
        if isinstance(other, (int, float)):
            return self + (-other)
        return self + (-as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        if _defers(other):
            return NotImplemented
        if isinstance(other, (int, float)):
            return (-self) + other
        return as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        if _defers(other):
            return NotImplemented
        if isinstance(other, (int, float)):
            def backward_scalar(grad: np.ndarray) -> None:
                self._accumulate(grad * other)

            return Tensor._make(self.data * other, (self,), backward_scalar)
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        if _defers(other):
            return NotImplemented
        if isinstance(other, (int, float)):
            return self * (1.0 / other)
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        if _defers(other):
            return NotImplemented
        return as_tensor(other) / self

    def __pow__(self, exponent) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")

        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic via tanh: sigma(x) = (tanh(x/2) + 1)/2.
        out_data = 0.5 * (np.tanh(0.5 * self.data) + 1.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float | None, high: float | None) -> "Tensor":
        """Clamp values; gradient is passed through only inside the window."""
        out_data = np.clip(self.data, low, high)
        inside = np.ones_like(self.data, dtype=bool)
        if low is not None:
            inside &= self.data > low
        if high is not None:
            inside &= self.data < high

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * inside)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        if _defers(other):
            return NotImplemented
        other = as_tensor(other)
        a, b = self.data, other.data
        if b.ndim == 2 and a.ndim > 2:
            # (..., k) @ (k, m): collapse the batch axes into one big GEMM —
            # numpy's batched matmul over thousands of tiny matrices is far
            # slower than a single large one.  This is the Linear-layer hot
            # path for every model in the repo.
            k, m = b.shape
            lead = a.shape[:-1]
            out_data = (a.reshape(-1, k) @ b).reshape(*lead, m)

            def backward(grad: np.ndarray) -> None:
                grad2d = grad.reshape(-1, m)
                if self.requires_grad:
                    self._accumulate((grad2d @ b.T).reshape(a.shape))
                if other.requires_grad:
                    other._accumulate(a.reshape(-1, k).T @ grad2d)

            return Tensor._make(out_data, (self, other), backward)
        if a.ndim == 2 and b.ndim > 2:
            # (v, w) @ (..., w, c): graph-propagation hot path.  Flatten the
            # batch into one GEMM instead of a batched matmul over thousands
            # of (v, w) x (w, c) products.
            v, w = a.shape
            c = b.shape[-1]
            batch_shape = b.shape[:-2]

            def _mix(matrix: np.ndarray, operand: np.ndarray) -> np.ndarray:
                moved = np.moveaxis(operand, -2, 0).reshape(operand.shape[-2], -1)
                out = matrix @ moved
                out = out.reshape(matrix.shape[0], *batch_shape, operand.shape[-1])
                return np.moveaxis(out, 0, -2)

            out_data = _mix(a, b)

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    grad_mat = np.moveaxis(grad, -2, 0).reshape(v, -1)
                    b_mat = np.moveaxis(b, -2, 0).reshape(w, -1)
                    self._accumulate(grad_mat @ b_mat.T)
                if other.requires_grad:
                    other._accumulate(_mix(a.T, grad))

            return Tensor._make(out_data, (self, other), backward)
        out_data = a @ b

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if b.ndim == 1:
                    # (..., n) @ (n,) -> (...,): grad_a[..., n] = grad[...] * b[n]
                    grad_a = grad[..., None] * b
                elif a.ndim == 1:
                    # (n,) @ (..., n, m) -> (..., m): contract grad with b over
                    # every axis except b's node axis.
                    bt = np.swapaxes(b, -1, -2)  # (..., m, n)
                    axes = list(range(grad.ndim))
                    grad_a = np.tensordot(grad, bt, axes=(axes, axes))
                else:
                    grad_a = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
                self._accumulate(grad_a)
            if other.requires_grad:
                if a.ndim == 1:
                    # grad_b[..., n, m] = a[n] * grad[..., m]
                    grad_b = _unbroadcast(a[:, None] * grad[..., None, :], b.shape)
                elif b.ndim == 1:
                    # (..., n) @ (n,) -> (...,): grad_b[n] = sum grad[...] * a[..., n]
                    axes = list(range(grad.ndim))
                    grad_b = np.tensordot(grad, a, axes=(axes, axes))
                else:
                    grad_b = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
                other._accumulate(grad_b)

        return Tensor._make(out_data, (self, other), backward)

    def __rmatmul__(self, other) -> "Tensor":
        if _defers(other):
            return NotImplemented
        return as_tensor(other) @ self

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / count

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Max reduction; gradient flows to (all) argmax positions equally."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                o = np.expand_dims(o, axis)
            mask = (self.data == o)
            counts = mask.sum(axis=axis if axis is not None else None, keepdims=True)
            self._accumulate(np.broadcast_to(g, self.shape) * mask / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(in_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        in_shape = self.shape
        # Basic indexing (ints/slices/ellipsis) never selects a position
        # twice, so plain assignment-add is valid and much faster than the
        # general scatter-add needed for integer-array (fancy) indexing.
        parts = key if isinstance(key, tuple) else (key,)
        fancy = any(isinstance(p, (list, np.ndarray)) for p in parts)

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(in_shape, dtype=grad.dtype)
            if fancy:
                np.add.at(full, key, grad)
            else:
                full[key] += grad
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def pad_last(self, left: int, right: int, value: float = 0.0) -> "Tensor":
        """Pad the last axis with ``value`` (used for causal temporal convs)."""
        if left < 0 or right < 0:
            raise ValueError("padding must be non-negative")
        widths = [(0, 0)] * (self.ndim - 1) + [(left, right)]
        out_data = np.pad(self.data, widths, constant_values=value)
        size = self.shape[-1]

        def backward(grad: np.ndarray) -> None:
            sl = [slice(None)] * (self.ndim - 1) + [slice(left, left + size)]
            self._accumulate(grad[tuple(sl)])

        return Tensor._make(out_data, (self,), backward)

    def unfold_last(self, size: int, dilation: int = 1) -> "Tensor":
        """Extract sliding windows along the last axis.

        Returns a tensor of shape ``(*leading, T_out, size)`` where
        ``T_out = T - (size - 1) * dilation``.  This is the primitive that
        temporal convolutions are built from.
        """
        span = (size - 1) * dilation + 1
        t_in = self.shape[-1]
        if span > t_in:
            raise ValueError(f"unfold window span {span} exceeds axis length {t_in}")
        t_out = t_in - span + 1
        idx = np.arange(t_out)[:, None] + dilation * np.arange(size)[None, :]
        out_data = self.data[..., idx]
        in_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(in_shape, dtype=grad.dtype)
            # Scatter-add each window element back to its source position.
            flat = full.reshape(-1, t_in)
            gflat = grad.reshape(-1, t_out, size)
            for j in range(size):
                offs = dilation * j
                flat[:, offs:offs + t_out] += gflat[:, :, j]
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable; return plain numpy bool arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)


# ----------------------------------------------------------------------
# Module-level graph-combining helpers (need access to several tensors)
# ----------------------------------------------------------------------
def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * grad.ndim
                sl[axis] = slice(start, stop)
                t._accumulate(grad[tuple(sl)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for t, slab in zip(tensors, slabs):
            if t.requires_grad:
                t._accumulate(slab)

    return Tensor._make(out_data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select: condition is a plain boolean array."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(np.where(cond, grad, 0.0), a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(np.where(cond, 0.0, grad), b.shape))

    return Tensor._make(out_data, (a, b), backward)
