"""Finite-difference gradient verification for the autodiff engine.

Used by the test-suite to certify every op and every layer: any function
``f(*tensors) -> scalar Tensor`` can be checked against central differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(func: Callable[..., Tensor], tensors: Sequence[Tensor],
                       index: int, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``func`` w.r.t. ``tensors[index]``."""
    target = tensors[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = float(func(*tensors).data)
        flat[i] = original - epsilon
        minus = float(func(*tensors).data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_gradients(func: Callable[..., Tensor], tensors: Sequence[Tensor],
                    atol: float = 1e-5, rtol: float = 1e-4,
                    epsilon: float = 1e-6) -> None:
    """Assert analytic gradients of ``func`` match finite differences.

    ``tensors`` should be float64 for the comparison to be meaningful.
    Raises ``AssertionError`` with a diagnostic message on mismatch.
    """
    for t in tensors:
        t.zero_grad()
    out = func(*tensors)
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    out.backward()
    for i, t in enumerate(tensors):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(func, tensors, i, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}")
