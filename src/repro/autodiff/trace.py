"""Trace-capture JIT: record one epoch's tape, verify it, fuse it, replay it.

A full-batch fit executes the *same* op sequence every epoch — only the
numbers change.  The eager engine nevertheless pays per-epoch Python costs
proportional to graph size: one :class:`~repro.autodiff.tensor.Tensor`
allocation and graph-wiring call per op, a topological sort per backward,
and a fresh output array per intermediate.  This module removes all of
that for epochs 3..N:

* **Capture** (epoch 1): :func:`repro.autodiff.tensor.set_trace_hook`
  records every graph-wired tensor in creation order — the tape.
* **Verify** (epoch 2): a second capture is compared node-by-node against
  the first — op identity (the backward closure's *code object*, which is
  per definition site), output shapes and dtypes, scalar operands
  (recovered from closure free variables), parameter identities and
  constant classifications all must match.  Any difference marks the
  trace invalid and the fit stays eager.
* **Replay** (epochs 3..N): the verified tape is compiled into a flat
  list of argument-free closures over a pre-planned buffer arena — the
  verify epoch's own intermediate arrays, written in place with
  ``out=`` — covering forward, backward (in the exact reverse-topological
  order the eager walk would use) and the trainer tail (loss readout,
  ``after_backward`` hooks, ``optimizer.step``).  Runs of single-parent
  elementwise ops are fused into single multi-ufunc closures sharing one
  output buffer.

Bit-identity contract
---------------------
Every replayed call mirrors the eager op's exact numpy expression and
evaluation order, so a replayed epoch produces the same floats — bit for
bit — as its eager twin (asserted with ``==`` in ``tests/training``).
Grad accumulation order is preserved by simulating the eager DFS
topological sort at compile time and emitting each parent contribution at
the same position the eager ``_accumulate`` call would run.

Data versus structure
---------------------
Constant (non-grad) inputs are classified at verify time:

* same object both epochs → **stable external** (bound by reference; the
  stacked executor refreshes its lane mask in place through this channel);
* equal values, different objects → **stable snapshot** (bound once);
* annotated ``_trace_src = ("volatile", provider)`` → **volatile data**
  (dropout masks): the provider is re-invoked on every replay, advancing
  the same RNG stream the eager forward would;
* annotated ``_trace_src = ("derived", src, fn)`` → recomputed from the
  current value of ``src``'s buffer on every replay (softmax max-shift);
* different values, no annotation → **invalid** (e.g. huber's
  data-dependent ``where`` mask): the fit falls back to eager.

Replay is further guarded per epoch: parameter storage identity
(``p.data is <bound array>``) and the anomaly-mode flag are checked before
running the plan; a failed guard retraces (bounded budget) or disables.
"""

from __future__ import annotations

import contextlib
import functools
from time import perf_counter
from typing import Callable

import numpy as np

from .anomaly import is_anomaly_enabled
from . import tensor as _tensor_mod
from .tensor import Tensor, _unbroadcast
from ..analysis.hazards import reason as _reason

__all__ = ["EpochJIT", "TraceInvalid", "chain_reference"]


class TraceInvalid(Exception):
    """The captured tapes are not structurally identical / replayable."""


def _closure_vars(fn: Callable) -> dict:
    """Free variables (plus keyword-only defaults) of a backward closure."""
    cells = fn.__closure__ or ()
    out = dict(zip(fn.__code__.co_freevars,
                   (cell.cell_contents for cell in cells)))
    if fn.__kwdefaults__:
        out.update(fn.__kwdefaults__)
    return out


def _provider_key(p) -> tuple:
    """Comparable identity for a volatile-constant provider callable.

    ``functools.partial(self.method, ...)`` builds a fresh bound-method
    object on every access, so raw ``is`` comparison would reject two
    annotations of the same layer's draw method — unwrap to the underlying
    function + receiver instead.
    """
    if isinstance(p, functools.partial):
        return ("partial", _provider_key(p.func), p.args,
                tuple(sorted(p.keywords.items())))
    func = getattr(p, "__func__", None)
    if func is not None:  # bound method
        return ("method", id(func), id(p.__self__))
    return ("callable", id(p))


def _same_provider(p1, p2) -> bool:
    """Whether two volatile-constant providers are the same draw source."""
    if p1 is p2:
        return True
    try:
        return _provider_key(p1) == _provider_key(p2)
    except Exception:
        return False


# ----------------------------------------------------------------------
# Op rules
# ----------------------------------------------------------------------
class _Rule:
    """How one op (identified by its backward code object) is replayed."""

    __slots__ = ("name", "fuse", "signature", "verify", "forward", "backward")

    def __init__(self, name, forward, backward, signature=None, verify=None,
                 fuse=None):
        self.name = name
        self.fuse = fuse  # None | "interior" | "terminal"
        self.signature = signature or (lambda cv: ())
        self.verify = verify  # optional extra cross-epoch check
        self.forward = forward  # emit_forward(C, rec) -> None
        self.backward = backward  # emit_backward(C, rec) -> None


_RULES: dict | None = None  # backward code object -> _Rule


def _fw_view(C, rec):
    """View-producing op: the output tracks parent writes; no call."""


# -- forward emitters --------------------------------------------------
def _fw_unary(ufunc):
    def emit(C, rec):
        src, buf = C.pbuf(rec.parents[0]), rec.tensor._data
        C.add_call(rec, "forward", lambda: ufunc(src, out=buf))
    return emit


def _fw_binary(ufunc):
    def emit(C, rec):
        a, b = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
        buf = rec.tensor._data
        C.add_call(rec, "forward", lambda: ufunc(a, b, out=buf))
    return emit


def _fw_scalar(ufunc, key):
    def emit(C, rec):
        src, buf = C.pbuf(rec.parents[0]), rec.tensor._data
        s = rec.cv[key]
        C.add_call(rec, "forward", lambda: ufunc(src, s, out=buf))
    return emit


def _fw_sigmoid(C, rec):
    # Mirrors ``0.5 * (np.tanh(0.5 * x) + 1.0)`` as an in-place chain.
    src, buf = C.pbuf(rec.parents[0]), rec.tensor._data

    def call():
        np.multiply(src, 0.5, out=buf)
        np.tanh(buf, out=buf)
        np.add(buf, 1.0, out=buf)
        np.multiply(buf, 0.5, out=buf)
    C.add_call(rec, "forward", call)


def _fw_relu(C, rec):
    src, buf = C.pbuf(rec.parents[0]), rec.tensor._data
    mask = rec.aux.setdefault("mask", np.empty(src.shape, dtype=bool))

    def call():
        np.greater(src, 0, out=mask)
        # np.where(mask, x, 0.0) puts a literal +0.0 at masked-out
        # positions; fill-then-copyto reproduces that exactly (x * mask
        # would leak -0.0 where x is negative zero... or negative).
        np.copyto(buf, 0.0)
        np.copyto(buf, src, where=mask)
    C.add_call(rec, "forward", call)


def _fw_leaky(C, rec):
    src, buf = C.pbuf(rec.parents[0]), rec.tensor._data
    slope = rec.cv["negative_slope"]
    mask = rec.aux.setdefault("mask", np.empty(src.shape, dtype=bool))

    def call():
        np.greater(src, 0, out=mask)
        np.multiply(src, slope, out=buf)
        np.copyto(buf, src, where=mask)
    C.add_call(rec, "forward", call)


def _fw_abs(C, rec):
    src, buf = C.pbuf(rec.parents[0]), rec.tensor._data
    sign = rec.aux.setdefault("sign", np.empty_like(src))

    def call():
        np.sign(src, out=sign)
        np.absolute(src, out=buf)
    C.add_call(rec, "forward", call)


def _fw_pow(C, rec):
    src, buf = C.pbuf(rec.parents[0]), rec.tensor._data
    exponent = rec.cv["exponent"]
    # ``a ** 2`` dispatches numpy's fast scalar-power path (np.square),
    # not np.power — mirror the operator expression itself.
    C.add_call(rec, "forward", lambda: np.copyto(buf, src ** exponent))


def _fw_sum(C, rec):
    src, buf = C.pbuf(rec.parents[0]), rec.tensor._data
    axis, keepdims = rec.cv["axis"], rec.cv["keepdims"]
    C.add_call(rec, "forward",
               lambda: np.sum(src, axis=axis, keepdims=keepdims, out=buf))


def _fw_copy_eval(expr):
    """Forward that mirrors an allocating eager expression, then copies."""
    def emit(C, rec):
        buf = rec.tensor._data
        fn = expr(C, rec)
        C.add_call(rec, "forward", lambda: np.copyto(buf, fn()))
    return emit


def _fw_matmul_flat(C, rec):
    a, b = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    buf = rec.tensor._data
    k, m = rec.cv["k"], rec.cv["m"]
    out2d = buf.reshape(-1, m)
    C.add_call(rec, "forward",
               lambda: np.matmul(a.reshape(-1, k), b, out=out2d))


def _fw_matmul_mix(C, rec):
    a, b = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    buf = rec.tensor._data
    mix = rec.cv["_mix"]  # the captured closure itself: guaranteed mirror
    C.add_call(rec, "forward", lambda: np.copyto(buf, mix(a, b)))


def _fw_matmul_general(C, rec):
    a, b = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    buf = rec.tensor._data
    C.add_call(rec, "forward", lambda: np.matmul(a, b, out=buf))


def _fw_concat(C, rec):
    bufs = [C.pbuf(p) for p in rec.parents]
    axis, buf = rec.cv["axis"], rec.tensor._data
    C.add_call(rec, "forward",
               lambda: np.concatenate(bufs, axis=axis, out=buf))


def _fw_stack(C, rec):
    bufs = [C.pbuf(p) for p in rec.parents]
    axis, buf = rec.cv["axis"], rec.tensor._data
    C.add_call(rec, "forward", lambda: np.stack(bufs, axis=axis, out=buf))


def _fw_where(C, rec):
    a, b = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    cond, buf = rec.cv["cond"], rec.tensor._data

    def call():
        np.copyto(buf, b)
        np.copyto(buf, a, where=cond)
    C.add_call(rec, "forward", call)


def _fw_lane_matmul(C, rec):
    from ..nn.stacked_ops import BATCHED_LANES
    xd, wd = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    buf = rec.tensor._data
    lanes, in_f, out_f = rec.cv["lanes"], rec.cv["in_f"], rec.cv["out_f"]
    lane_lead = buf.shape[1:-1]
    if BATCHED_LANES:
        out3 = buf.reshape(lanes, -1, out_f)
        C.add_call(rec, "forward",
                   lambda: np.matmul(xd.reshape(lanes, -1, in_f), wd,
                                     out=out3))
    else:
        def call():
            for lane in range(lanes):
                buf[lane] = (xd[lane].reshape(-1, in_f) @ wd[lane]).reshape(
                    *lane_lead, out_f)
        C.add_call(rec, "forward", call)


def _fw_lane_bias_add(C, rec):
    xd, bd = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    buf = rec.tensor._data
    lanes = rec.cv["lanes"]
    bview = bd.reshape((lanes,) + (1,) * (xd.ndim - 2) + (bd.shape[-1],))
    C.add_call(rec, "forward", lambda: np.add(xd, bview, out=buf))


def _fw_lane_propagate(C, rec):
    from ..nn.stacked_ops import BATCHED_LANES
    xd, buf = C.pbuf(rec.parents[0]), rec.tensor._data
    operator, lanes = rec.cv["operator"], rec.cv["lanes"]
    mix, mix_batched = rec.cv["_mix"], rec.cv["_mix_batched"]
    if BATCHED_LANES:
        C.add_call(rec, "forward",
                   lambda: np.copyto(buf, mix_batched(operator, xd)))
    else:
        def call():
            for lane in range(lanes):
                buf[lane] = mix(operator[lane], xd[lane])
        C.add_call(rec, "forward", call)


def _fw_csr_matmul(C, rec):
    xd, buf = C.pbuf(rec.parents[0]), rec.tensor._data
    operator, spread = rec.cv["operator"], rec.cv["_spread"]
    C.add_call(rec, "forward", lambda: np.copyto(buf, spread(operator, xd)))


# -- backward emitters -------------------------------------------------
def _bw_add_scalar(C, rec):
    C.acc_array(rec, rec.parents[0], C.gbuf(rec))


def _bw_add_tensor(C, rec):
    g = C.gbuf(rec)
    for parent in rec.parents:
        if not C.takes_grad(parent):
            continue
        shape = C.pbuf(parent).shape
        if shape == g.shape:
            C.acc_array(rec, parent, g)
        else:
            C.acc_fn(rec, parent, lambda shape=shape: _unbroadcast(g, shape))


def _bw_neg(C, rec):
    g = C.gbuf(rec)
    C.acc_fn(rec, rec.parents[0], lambda: -g)


def _bw_mul_scalar(C, rec):
    g, s = C.gbuf(rec), rec.cv["other"]
    C.acc_fn(rec, rec.parents[0], lambda: g * s)


def _bw_mul_tensor(C, rec):
    g = C.gbuf(rec)
    a, b = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    if C.takes_grad(rec.parents[0]):
        C.acc_fn(rec, rec.parents[0], lambda: _unbroadcast(g * b, a.shape))
    if C.takes_grad(rec.parents[1]):
        C.acc_fn(rec, rec.parents[1], lambda: _unbroadcast(g * a, b.shape))


def _bw_div_tensor(C, rec):
    g = C.gbuf(rec)
    a, b = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    if C.takes_grad(rec.parents[0]):
        C.acc_fn(rec, rec.parents[0], lambda: _unbroadcast(g / b, a.shape))
    if C.takes_grad(rec.parents[1]):
        C.acc_fn(rec, rec.parents[1],
                 lambda: _unbroadcast(-g * a / (b ** 2), b.shape))


def _bw_pow(C, rec):
    g, src = C.gbuf(rec), C.pbuf(rec.parents[0])
    exponent = rec.cv["exponent"]
    C.acc_fn(rec, rec.parents[0],
             lambda: g * exponent * src ** (exponent - 1))


def _bw_exp(C, rec):
    g, out = C.gbuf(rec), rec.tensor._data
    C.acc_fn(rec, rec.parents[0], lambda: g * out)


def _bw_log(C, rec):
    g, src = C.gbuf(rec), C.pbuf(rec.parents[0])
    C.acc_fn(rec, rec.parents[0], lambda: g / src)


def _bw_sqrt(C, rec):
    g, out = C.gbuf(rec), rec.tensor._data
    C.acc_fn(rec, rec.parents[0], lambda: g * 0.5 / out)


def _bw_tanh(C, rec):
    g, out = C.gbuf(rec), rec.tensor._data
    C.acc_fn(rec, rec.parents[0], lambda: g * (1.0 - out ** 2))


def _bw_sigmoid(C, rec):
    g, out = C.gbuf(rec), rec.tensor._data
    C.acc_fn(rec, rec.parents[0], lambda: g * out * (1.0 - out))


def _bw_relu(C, rec):
    g, mask = C.gbuf(rec), rec.aux["mask"]
    C.acc_fn(rec, rec.parents[0], lambda: g * mask)


def _bw_leaky(C, rec):
    g, mask = C.gbuf(rec), rec.aux["mask"]
    slope = rec.cv["negative_slope"]
    C.acc_fn(rec, rec.parents[0],
             lambda: g * np.where(mask, 1.0, slope))


def _bw_abs(C, rec):
    g, sign = C.gbuf(rec), rec.aux["sign"]
    C.acc_fn(rec, rec.parents[0], lambda: g * sign)


def _bw_sum(C, rec):
    g = C.gbuf(rec)
    axis, keepdims = rec.cv["axis"], rec.cv["keepdims"]
    if axis is not None and not keepdims:
        g = np.expand_dims(g, axis)  # persistent view of the grad buffer
    C.acc_array(rec, rec.parents[0], g)


def _bw_reshape(C, rec):
    # The grad buffer is our own C-contiguous allocation, so this is a view.
    C.acc_array(rec, rec.parents[0], C.gbuf(rec).reshape(rec.cv["in_shape"]))


def _bw_transpose(C, rec):
    C.acc_array(rec, rec.parents[0], C.gbuf(rec).transpose(rec.cv["inverse"]))


def _bw_getitem(C, rec):
    g, key = C.gbuf(rec), rec.cv["key"]
    in_shape = rec.cv["in_shape"]
    scratch = rec.aux.setdefault(
        "scatter", np.empty(in_shape, dtype=g.dtype))

    def fn():
        scratch[...] = 0.0
        scratch[key] += g
        return scratch
    C.acc_fn(rec, rec.parents[0], fn)


def _bw_matmul_flat(C, rec):
    a, b = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    k, m = rec.cv["k"], rec.cv["m"]
    g2 = C.gbuf(rec).reshape(-1, m)
    if C.takes_grad(rec.parents[0]):
        C.acc_fn(rec, rec.parents[0], lambda: (g2 @ b.T).reshape(a.shape))
    if C.takes_grad(rec.parents[1]):
        C.acc_fn(rec, rec.parents[1], lambda: a.reshape(-1, k).T @ g2)


def _bw_matmul_mix(C, rec):
    a, b = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    g = C.gbuf(rec)
    v, w, mix = rec.cv["v"], rec.cv["w"], rec.cv["_mix"]
    if C.takes_grad(rec.parents[0]):
        def fn():
            grad_mat = np.moveaxis(g, -2, 0).reshape(v, -1)
            b_mat = np.moveaxis(b, -2, 0).reshape(w, -1)
            return grad_mat @ b_mat.T
        C.acc_fn(rec, rec.parents[0], fn)
    if C.takes_grad(rec.parents[1]):
        C.acc_fn(rec, rec.parents[1], lambda: mix(a.T, g))


def _bw_matmul_general(C, rec):
    a, b = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    g = C.gbuf(rec)
    if C.takes_grad(rec.parents[0]):
        C.acc_fn(rec, rec.parents[0],
                 lambda: _unbroadcast(g @ np.swapaxes(b, -1, -2), a.shape))
    if C.takes_grad(rec.parents[1]):
        C.acc_fn(rec, rec.parents[1],
                 lambda: _unbroadcast(np.swapaxes(a, -1, -2) @ g, b.shape))


def _bw_concat(C, rec):
    g, axis = C.gbuf(rec), rec.cv["axis"]
    offsets = rec.cv["offsets"]
    for parent, start, stop in zip(rec.parents, offsets[:-1], offsets[1:]):
        if not C.takes_grad(parent):
            continue
        sl = [slice(None)] * g.ndim
        sl[axis] = slice(start, stop)
        C.acc_array(rec, parent, g[tuple(sl)])


def _bw_stack(C, rec):
    slabs = np.moveaxis(C.gbuf(rec), rec.cv["axis"], 0)
    for parent, slab in zip(rec.parents, slabs):
        if C.takes_grad(parent):
            C.acc_array(rec, parent, slab)


def _bw_where(C, rec):
    g, cond = C.gbuf(rec), rec.cv["cond"]
    a, b = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    if C.takes_grad(rec.parents[0]):
        C.acc_fn(rec, rec.parents[0],
                 lambda: _unbroadcast(np.where(cond, g, 0.0), a.shape))
    if C.takes_grad(rec.parents[1]):
        C.acc_fn(rec, rec.parents[1],
                 lambda: _unbroadcast(np.where(cond, 0.0, g), b.shape))


def _bw_lane_matmul(C, rec):
    from ..nn.stacked_ops import BATCHED_LANES
    xd, wd = C.pbuf(rec.parents[0]), C.pbuf(rec.parents[1])
    lanes, in_f, out_f = rec.cv["lanes"], rec.cv["in_f"], rec.cv["out_f"]
    lane_shape = rec.cv["lane_shape"]
    g2 = C.gbuf(rec).reshape(lanes, -1, out_f)
    if C.takes_grad(rec.parents[0]):
        if BATCHED_LANES:
            C.acc_fn(rec, rec.parents[0],
                     lambda: np.matmul(g2, wd.swapaxes(-1, -2)).reshape(
                         xd.shape))
        else:
            def fn():
                gx = np.empty(xd.shape, dtype=np.result_type(g2, wd))
                for lane in range(lanes):
                    gx[lane] = (g2[lane] @ wd[lane].T).reshape(lane_shape)
                return gx
            C.acc_fn(rec, rec.parents[0], fn)
    if C.takes_grad(rec.parents[1]):
        if BATCHED_LANES:
            C.acc_fn(rec, rec.parents[1],
                     lambda: np.matmul(
                         xd.reshape(lanes, -1, in_f).swapaxes(-1, -2), g2))
        else:
            def fn():
                x2 = xd.reshape(lanes, -1, in_f)
                gw = np.empty(wd.shape, dtype=np.result_type(xd, g2))
                for lane in range(lanes):
                    gw[lane] = x2[lane].T @ g2[lane]
                return gw
            C.acc_fn(rec, rec.parents[1], fn)


def _bw_lane_bias_add(C, rec):
    from ..nn.stacked_ops import BATCHED_LANES
    g = C.gbuf(rec)
    bd = C.pbuf(rec.parents[1])
    lanes = rec.cv["lanes"]
    batched_axes, reduce_axes = rec.cv["batched_axes"], rec.cv["reduce_axes"]
    if C.takes_grad(rec.parents[0]):
        C.acc_array(rec, rec.parents[0], g)
    if C.takes_grad(rec.parents[1]):
        if BATCHED_LANES:
            C.acc_fn(rec, rec.parents[1], lambda: g.sum(axis=batched_axes))
        else:
            def fn():
                gb = np.empty(bd.shape, dtype=g.dtype)
                for lane in range(lanes):
                    gb[lane] = g[lane].sum(axis=reduce_axes)
                return gb
            C.acc_fn(rec, rec.parents[1], fn)


def _bw_lane_propagate(C, rec):
    from ..nn.stacked_ops import BATCHED_LANES
    g, xd = C.gbuf(rec), C.pbuf(rec.parents[0])
    operator, lanes = rec.cv["operator"], rec.cv["lanes"]
    mix, mix_batched = rec.cv["_mix"], rec.cv["_mix_batched"]
    if BATCHED_LANES:
        C.acc_fn(rec, rec.parents[0],
                 lambda: mix_batched(operator.swapaxes(-1, -2), g))
    else:
        def fn():
            gx = np.empty(xd.shape, dtype=np.result_type(operator, g))
            for lane in range(lanes):
                gx[lane] = mix(operator[lane].T, g[lane])
            return gx
        C.acc_fn(rec, rec.parents[0], fn)


def _bw_csr_matmul(C, rec):
    g = C.gbuf(rec)
    operator, spread = rec.cv["operator"], rec.cv["_spread"]
    C.acc_fn(rec, rec.parents[0], lambda: spread(operator.T, g))


def _verify_where(cv1, cv2):
    # The condition lives in the closure, not in the graph.  The same
    # array object both epochs is a deliberately persistent, externally
    # maintained mask (the stacked executor's lane-active mask) and is
    # bound live.  Different objects mean the mask is recomputed per
    # epoch from data (huber's |error| <= delta) — even if the two
    # captured epochs happened to agree, later epochs may not, so the
    # trace is invalid.
    if cv1["cond"] is not cv2["cond"]:
        raise TraceInvalid(_reason("where-data-dependent"))


def _verify_lane_propagate(cv1, cv2):
    op1, op2 = cv1["operator"], cv2["operator"]
    if op1 is not op2 and not np.array_equal(op1, op2):
        raise TraceInvalid(_reason("lane-propagate-changed"))


def _verify_csr_matmul(cv1, cv2):
    # The CSR operator is a cached immutable constant
    # (repro.nn.graphcache), so epochs normally share one object and the
    # identity check wins; a rebuilt but value-identical operator also
    # replays.  Anything else means the graph changed under the tape.
    op1, op2 = cv1["operator"], cv2["operator"]
    if not op1.same_values(op2):
        raise TraceInvalid(_reason("csr-operator-changed"))


def _verify_getitem(cv1, cv2):
    if cv1["fancy"] or cv2["fancy"]:
        raise TraceInvalid(_reason("getitem-fancy"))


def _verify_matmul_general(cv1, cv2):
    # The eager general branch has dedicated vector formulas for 1-D
    # operands (tensordot contractions) that the replay mirror does not
    # reproduce; only the ndim >= 2 path is compiled.
    if cv2["a"].ndim < 2 or cv2["b"].ndim < 2:
        raise TraceInvalid(_reason("matmul-1d"))


def _sig_keys(*keys):
    def signature(cv):
        return tuple(repr(cv[key]) for key in keys)
    return signature


def _build_rules() -> dict:
    """Harvest backward code objects by running each supported op once.

    Backward closures share one code object per definition site, so
    executing every op on dummy operands and reading
    ``out._backward.__code__`` yields the exact dispatch keys — no
    name-string matching, and the three ``__matmul__`` branches resolve
    to three distinct rules.
    """
    rules: dict = {}
    saved_hook = _tensor_mod._TRACE_HOOK
    _tensor_mod.set_trace_hook(None)
    try:
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.full((2, 3), 2.0), requires_grad=True)

        def rule(out, *args, **kwargs):
            rules[out._backward.__code__] = _Rule(*args, **kwargs)

        rule(a + 1.5, "__add__", _fw_scalar(np.add, "_scalar"),
             _bw_add_scalar, signature=_sig_keys("_scalar"),
             fuse="interior")
        rule(a + b, "__add__", _fw_binary(np.add), _bw_add_tensor)
        rule(-a, "__neg__", _fw_unary(np.negative), _bw_neg,
             fuse="interior")
        rule(a * 1.5, "__mul__", _fw_scalar(np.multiply, "other"),
             _bw_mul_scalar, signature=_sig_keys("other"), fuse="interior")
        rule(a * b, "__mul__", _fw_binary(np.multiply), _bw_mul_tensor)
        rule(a / b, "__truediv__", _fw_binary(np.divide), _bw_div_tensor)
        rule(a ** 2, "__pow__", _fw_pow, _bw_pow,
             signature=_sig_keys("exponent"))
        rule(a.exp(), "exp", _fw_unary(np.exp), _bw_exp, fuse="terminal")
        rule(a.log(), "log", _fw_unary(np.log), _bw_log)
        rule(a.sqrt(), "sqrt", _fw_unary(np.sqrt), _bw_sqrt,
             fuse="terminal")
        rule(a.tanh(), "tanh", _fw_unary(np.tanh), _bw_tanh,
             fuse="terminal")
        rule(a.sigmoid(), "sigmoid", _fw_sigmoid, _bw_sigmoid,
             fuse="terminal")
        rule(a.relu(), "relu", _fw_relu, _bw_relu)
        rule(a.leaky_relu(), "leaky_relu", _fw_leaky, _bw_leaky,
             signature=_sig_keys("negative_slope"))
        rule(a.abs(), "abs", _fw_abs, _bw_abs)
        rule(a.sum(), "sum", _fw_sum, _bw_sum,
             signature=_sig_keys("axis", "keepdims"))
        rule(a.reshape(3, 2), "reshape", _fw_copy_eval(
            lambda C, rec: (lambda src=C.pbuf(rec.parents[0]),
                            shape=rec.tensor._data.shape:
                            src.reshape(shape))), _bw_reshape,
            signature=_sig_keys("in_shape"))
        rule(a.transpose(), "transpose", _fw_view, _bw_transpose,
             signature=_sig_keys("inverse"))
        rule(a[0:1], "__getitem__", _fw_copy_eval(
            lambda C, rec: (lambda src=C.pbuf(rec.parents[0]),
                            key=rec.cv["key"]: src[key])), _bw_getitem,
            signature=_sig_keys("key"), verify=_verify_getitem)
        m3 = Tensor(np.ones((2, 2, 3)), requires_grad=True)
        m2 = Tensor(np.ones((3, 4)), requires_grad=True)
        rule(m3 @ m2, "__matmul__", _fw_matmul_flat, _bw_matmul_flat)
        sq = Tensor(np.ones((2, 2)), requires_grad=True)
        bat = Tensor(np.ones((3, 2, 4)), requires_grad=True)
        rule(sq @ bat, "__matmul__", _fw_matmul_mix, _bw_matmul_mix)
        g2 = Tensor(np.ones((3, 3)), requires_grad=True)
        rule(g2 @ g2, "__matmul__", _fw_matmul_general, _bw_matmul_general,
             verify=_verify_matmul_general)
        from .tensor import concat, stack, where
        rule(concat([a, b], axis=0), "concat", _fw_concat, _bw_concat,
             signature=lambda cv: (cv["axis"], tuple(cv["offsets"])))
        rule(stack([a, b], axis=0), "stack", _fw_stack, _bw_stack,
             signature=_sig_keys("axis"))
        rule(where(np.ones((2, 3), dtype=bool), a, b), "where", _fw_where,
             _bw_where, verify=_verify_where)
        try:
            from ..nn.stacked_ops import (lane_bias_add, lane_matmul,
                                          lane_propagate)
        except ImportError:  # pragma: no cover - nn layer always present
            pass
        else:
            lx = Tensor(np.ones((2, 3, 4)), requires_grad=True)
            lw = Tensor(np.ones((2, 4, 5)), requires_grad=True)
            lb = Tensor(np.ones((2, 4)), requires_grad=True)
            rule(lane_matmul(lx, lw), "lane_matmul", _fw_lane_matmul,
                 _bw_lane_matmul)
            rule(lane_bias_add(lx, lb), "lane_bias_add", _fw_lane_bias_add,
                 _bw_lane_bias_add)
            rule(lane_propagate(np.ones((2, 3, 3)), lx), "lane_propagate",
                 _fw_lane_propagate, _bw_lane_propagate,
                 verify=_verify_lane_propagate)
        try:
            from ..nn.sparse import CSRMatrix, csr_matmul
        except ImportError:  # pragma: no cover - nn layer always present
            pass
        else:
            sx = Tensor(np.ones((2, 3, 4)), requires_grad=True)
            rule(csr_matmul(CSRMatrix.from_dense(np.eye(3)), sx),
                 "csr_matmul", _fw_csr_matmul, _bw_csr_matmul,
                 verify=_verify_csr_matmul)
    finally:
        _tensor_mod.set_trace_hook(saved_hook)
    return rules


def _rules() -> dict:
    global _RULES
    if _RULES is None:
        _RULES = _build_rules()
    return _RULES


# ----------------------------------------------------------------------
# Fused elementwise chains
# ----------------------------------------------------------------------
#: forward step: fn(src, dst) writing dst in place; backward transform:
#: fn(g, s1, s2, out) -> ndarray (the transformed gradient).
def _chain_ops(name, scalar, out_buf):
    if name == "__neg__":
        return ((lambda x, d: np.negative(x, out=d)),
                (lambda g, s1, s2: np.negative(g, out=s1)))
    if name == "__add__":
        return ((lambda x, d, s=scalar: np.add(x, s, out=d)),
                (lambda g, s1, s2: g))  # d/dx (x + c) = 1
    if name == "__mul__":
        def bw(g, s1, s2, s=scalar):
            return np.multiply(g, s, out=s1)
        return (lambda x, d, s=scalar: np.multiply(x, s, out=d)), bw
    if name == "tanh":
        def bw(g, s1, s2, out=out_buf):
            np.square(out, out=s1)          # out ** 2 (fast scalar power)
            np.subtract(1.0, s1, out=s1)
            return np.multiply(g, s1, out=s1)
        return (lambda x, d: np.tanh(x, out=d)), bw
    if name == "sigmoid":
        def fw(x, d):
            np.multiply(x, 0.5, out=d)
            np.tanh(d, out=d)
            np.add(d, 1.0, out=d)
            np.multiply(d, 0.5, out=d)

        def bw(g, s1, s2, out=out_buf):
            np.multiply(g, out, out=s1)     # (grad * out) ...
            np.subtract(1.0, out, out=s2)
            return np.multiply(s1, s2, out=s1)  # ... * (1 - out)
        return fw, bw
    if name == "exp":
        def bw(g, s1, s2, out=out_buf):
            return np.multiply(g, out, out=s1)
        return (lambda x, d: np.exp(x, out=d)), bw
    if name == "sqrt":
        def bw(g, s1, s2, out=out_buf):
            np.multiply(g, 0.5, out=s1)
            return np.divide(s1, out, out=s1)
        return (lambda x, d: np.sqrt(x, out=d)), bw
    raise AssertionError(f"unknown chain op {name!r}")


def _chain_scalar(rec):
    if rec.rule.name == "__add__":
        return rec.cv["_scalar"]
    if rec.rule.name == "__mul__":
        return rec.cv["other"]
    return None


def chain_reference(ops) -> Callable[[Tensor], Tensor]:
    """Eager function applying a fused chain's op sequence (for gradcheck).

    ``ops`` is the ``(name, scalar)`` sequence from a compiled plan's
    ``fused_chains`` metadata; the returned callable rebuilds the same
    composition through the ordinary eager engine.
    """
    def apply(x: Tensor) -> Tensor:
        for name, scalar in ops:
            if name == "__neg__":
                x = -x
            elif name == "__add__":
                x = x + scalar
            elif name == "__mul__":
                x = x * scalar
            else:
                x = getattr(x, name)()
        return x
    return apply


# ----------------------------------------------------------------------
# Verification: structural identity of two captured tapes
# ----------------------------------------------------------------------
class _Record:
    """One tape node prepared for compilation (bound to epoch-2 storage)."""

    __slots__ = ("tensor", "rule", "cv", "parents", "gbuf", "aux")

    def __init__(self, tensor, rule, cv, parents):
        self.tensor = tensor
        self.rule = rule
        self.cv = cv
        self.parents = parents  # list of spec tuples
        self.gbuf = None
        self.aux = {}


def _classify_constant(t1, t2) -> tuple:
    src1 = getattr(t1, "_trace_src", None)
    src2 = getattr(t2, "_trace_src", None)
    if (src1 is None) != (src2 is None) or \
            (src1 is not None and src1[0] != src2[0]):
        raise TraceInvalid(_reason("const-annotation-changed"))
    if src1 is not None and src1[0] == "volatile":
        if not _same_provider(src1[1], src2[1]):
            raise TraceInvalid(_reason("const-provider-changed"))
        return ("volatile", t2, src2[1])
    if src1 is not None and src1[0] == "derived":
        return ("derived", t2, src2[1], src2[2])
    if t1 is t2:
        # Persistent external tensor (inputs, adjacency): bound live and
        # guarded per replay, so a ``.data`` rebind forces a retrace.
        return ("const", t2, True)
    if t1.data.dtype == t2.data.dtype and np.array_equal(t1.data, t2.data):
        return ("const", t2, False)  # stable snapshot (equal both epochs)
    raise TraceInvalid(_reason("const-value-changed"))


def _verify(tape1, tape2, root1, root2, watch1, watch2) -> list:
    """Match two captured tapes node-by-node; return compile-ready records.

    Raises :class:`TraceInvalid` on the first structural difference: op
    code object, output shape/dtype, scalar operands, parent wiring,
    parameter identity or constant classification.
    """
    if len(tape1) != len(tape2):
        raise TraceInvalid(_reason("op-count-changed",
                                   n1=len(tape1), n2=len(tape2)))
    if not tape2:
        raise TraceInvalid(_reason("empty-tape"))
    rules = _rules()
    idx1 = {id(t): i for i, t in enumerate(tape1)}
    idx2 = {id(t): i for i, t in enumerate(tape2)}
    if idx1.get(id(root1)) != idx2.get(id(root2)) or id(root2) not in idx2:
        raise TraceInvalid(_reason("root-moved"))
    for name in watch2:
        if idx1.get(id(watch1[name])) != idx2.get(id(watch2[name])):
            raise TraceInvalid(_reason("watch-moved", name=name))
    records: list[_Record] = []
    for i, (t1, t2) in enumerate(zip(tape1, tape2)):
        code = t2._backward.__code__
        if t1._backward.__code__ is not code:
            raise TraceInvalid(_reason(
                "op-changed", i=i, q1=t1._backward.__qualname__,
                q2=t2._backward.__qualname__))
        rule = rules.get(code)
        if rule is None:
            raise TraceInvalid(_reason(
                "op-unsupported", i=i,
                op=t2._backward.__qualname__.split('.<locals>')[0]))
        if t1.shape != t2.shape or t1.dtype != t2.dtype:
            raise TraceInvalid(_reason(
                "shape-changed", i=i, op=rule.name,
                before=f"{t1.shape}/{t1.dtype}",
                after=f"{t2.shape}/{t2.dtype}"))
        cv1, cv2 = _closure_vars(t1._backward), _closure_vars(t2._backward)
        try:
            if rule.signature(cv1) != rule.signature(cv2):
                raise TraceInvalid(_reason(
                    "scalar-operands-changed", i=i, op=rule.name))
        except TraceInvalid:
            raise
        except Exception as error:
            raise TraceInvalid(_reason(
                "signature-unreadable", i=i, op=rule.name,
                error=error)) from error
        if rule.verify is not None:
            rule.verify(cv1, cv2)
        if len(t1._parents) != len(t2._parents):
            raise TraceInvalid(_reason("arity-changed", i=i, op=rule.name))
        specs = []
        for p1, p2 in zip(t1._parents, t2._parents):
            if p1.requires_grad != p2.requires_grad:
                raise TraceInvalid(_reason("requires-grad-flipped", i=i))
            wired1, wired2 = p1._backward is not None, p2._backward is not None
            if wired1 != wired2:
                raise TraceInvalid(_reason("wiring-changed", i=i))
            if wired2:
                j1, j2 = idx1.get(id(p1)), idx2.get(id(p2))
                if j2 is None or j1 != j2:
                    raise TraceInvalid(_reason(
                        "graph-extends-beyond-epoch", i=i, op=rule.name))
                specs.append(("node", j2))
            elif p2.requires_grad:
                if p1 is not p2:
                    raise TraceInvalid(_reason(
                        "param-identity-changed", i=i, op=rule.name))
                specs.append(("param", p2))
            else:
                specs.append(_classify_constant(p1, p2))
        records.append(_Record(t2, rule, cv2, specs))
    return records


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
class _LeafGrad:
    """Per-replay gradient holder for one parameter leaf.

    Eager leaf accumulation allocates with ``np.array(grad, copy=True)``
    (order ``'K'``), so the copy inherits the incoming view's memory
    layout — a transposed weight-grad view yields an F-contiguous array,
    and downstream *reductions* over it (the grad-clip norm's
    ``sum(g**2)``) reduce in that layout's order.  Replay must mirror
    that allocation per epoch rather than reuse a C-contiguous arena
    buffer, or the recorded grad norms drift by an ulp.
    """

    __slots__ = ("leaf", "g")

    def __init__(self, leaf):
        self.leaf = leaf
        self.g = None


class _Plan:
    """A compiled epoch: flat call list over a persistent buffer arena."""

    __slots__ = ("calls", "meta", "tail", "root_buf", "watch_bufs",
                 "param_grads", "guards", "fused_chains", "replays",
                 "_records")

    def __init__(self):
        self.calls: list[Callable[[], None]] = []
        self.meta: list[tuple] = []  # (name, phase, nbytes) per call
        self.tail: tuple = ()
        self.root_buf: np.ndarray | None = None
        self.watch_bufs: dict[str, np.ndarray] = {}
        self.param_grads: list[tuple] = []  # (leaf tensor, grad buffer)
        self.guards: list[tuple] = []       # (tensor, bound data array)
        self.fused_chains: list[dict] = []
        self.replays = 0
        self._records: list = []  # keeps the arena (epoch-2 graph) alive

    def guards_ok(self) -> bool:
        for owner, bound in self.guards:
            if owner._data is not bound:
                return False
        return True

    def run(self) -> None:
        prof = _active_profiler()
        if prof is None:
            for call in self.calls:
                call()
        else:
            # One clock read per call boundary: each span absorbs the
            # bookkeeping of the previous one, so the whole loop's
            # wall-clock is attributed (see Profiler._add_span).
            add_span = prof._add_span
            clock = perf_counter
            prev = clock()
            for call, (name, phase, nbytes) in zip(self.calls, self.meta):
                call()
                now = clock()
                add_span("op", name, phase, prev, now - prev, nbytes)
                prev = now
        for call in self.tail:
            call()
        self.replays += 1


_PROFILER_LOOKUP: Callable | None = None


def _active_profiler():
    global _PROFILER_LOOKUP
    if _PROFILER_LOOKUP is None:
        try:
            from ..profiling.profiler import active_profiler
        except ImportError:  # pragma: no cover - profiling ships with repro
            def active_profiler():
                return None
        _PROFILER_LOOKUP = active_profiler
    return _PROFILER_LOOKUP()


class _Compiler:
    """Turns verified records into a :class:`_Plan`.

    The buffer arena is the verify epoch's own arrays: node outputs are
    written in place (``out=``), so view-producing ops (transpose, basic
    slicing, aliasing reshape) need no replay step at all — their epoch-2
    views track the parent writes automatically — and every array bound
    inside the captured backward closures (e.g. ``b`` in matmul) stays
    valid because it *is* the arena buffer.
    """

    def __init__(self, records, root_index, watch):
        self.records: list[_Record] = records
        self.root_index = root_index
        self.watch = watch
        self.plan = _Plan()
        self.plan._records = records
        self._written: set[int] = set()     # id(grad buffer) already stored
        self._param_gbufs: dict[int, np.ndarray] = {}
        self._guarded: set[int] = set()
        self._refilled: set[int] = set()
        self._phase = "forward"
        self._current_name = ""

    # -- emission helpers (called by the op rules) ---------------------
    def add_call(self, rec, phase, call) -> None:
        self.plan.calls.append(call)
        nbytes = rec.tensor._data.nbytes if phase == "forward" else \
            (rec.gbuf.nbytes if rec.gbuf is not None else 0)
        self.plan.meta.append((self._current_name or rec.rule.name,
                               phase, nbytes))

    def pbuf(self, spec) -> np.ndarray:
        kind = spec[0]
        if kind == "node":
            return self.records[spec[1]].tensor._data
        if kind == "param" or (kind == "const" and spec[2]):
            self._guard(spec[1])
        return spec[1]._data  # param / const / volatile / derived

    def takes_grad(self, spec) -> bool:
        return spec[0] in ("node", "param")

    def gbuf(self, rec) -> np.ndarray:
        if rec.gbuf is None:
            rec.gbuf = np.empty(rec.tensor.shape,
                                dtype=rec.tensor._data.dtype)
        return rec.gbuf

    def _grad_target(self, spec):
        if spec[0] == "node":
            return self.gbuf(self.records[spec[1]])
        leaf = spec[1]
        cell = self._param_gbufs.get(id(leaf))
        if cell is None:
            cell = _LeafGrad(leaf)
            self._param_gbufs[id(leaf)] = cell
            self.plan.param_grads.append(cell)
            self._guard(leaf)
        return cell

    def _guard(self, leaf) -> None:
        if id(leaf) not in self._guarded:
            self._guarded.add(id(leaf))
            self.plan.guards.append((leaf, leaf._data))

    def _emit_acc(self, rec, spec, produce) -> None:
        """Emit one gradient contribution, mirroring ``_accumulate``.

        ``produce()`` evaluates to the contribution array (it may be a
        bound array/view, evaluated lazily only for uniformity).  Node
        grads live in persistent arena buffers (store on the first
        emitted write, ``+=`` after); parameter leaves re-run the eager
        owned-copy allocation per replay (see :class:`_LeafGrad`).
        """
        dst = self._grad_target(spec)
        first = id(dst) not in self._written
        self._written.add(id(dst))
        if isinstance(dst, _LeafGrad):
            dtype = dst.leaf._data.dtype
            if first:
                def call():
                    dst.g = np.array(produce(), dtype=dtype, copy=True)
            else:
                def call():
                    dst.g += produce()
        elif first:
            def call():
                np.copyto(dst, produce())
        else:
            def call():
                np.add(dst, produce(), out=dst)
        self.add_call(rec, "backward", call)

    def acc_array(self, rec, spec, src) -> None:
        """Accumulate a precomputed array/view (may broadcast) into a grad."""
        self._emit_acc(rec, spec, lambda: src)

    def acc_fn(self, rec, spec, fn) -> None:
        """Accumulate the result of ``fn()`` (mirrors an eager expression)."""
        self._emit_acc(rec, spec, fn)

    # -- graph analysis ------------------------------------------------
    def _topo(self) -> list[Tensor]:
        """The eager DFS reverse-topological order, simulated exactly."""
        root = self.records[self.root_index].tensor
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        return topo

    def compile(self) -> _Plan:
        records = self.records
        index = {id(rec.tensor): i for i, rec in enumerate(records)}
        topo = self._topo()
        reachable = {index[id(t)] for t in topo if id(t) in index}

        # Consumer map over replayed nodes (plus derived-constant reads
        # and watch/root pins, which force materialization).
        consumers: dict[int, list[int]] = {i: [] for i in reachable}
        pinned: set[int] = {self.root_index}
        for name, t in self.watch.items():
            j = index.get(id(t))
            if j is None:
                raise TraceInvalid(_reason("watch-not-captured", name=name))
            pinned.add(j)
        for i in reachable:
            for spec in records[i].parents:
                if spec[0] == "node" and spec[1] in reachable:
                    consumers[spec[1]].append(i)
                elif spec[0] == "derived":
                    src = spec[2]
                    j = index.get(id(src))
                    if j is not None:
                        pinned.add(j)

        chains = self._find_chains(reachable, consumers, pinned)
        interior: set[int] = set()
        chain_at_last: dict[int, list[int]] = {}
        chain_at_first: dict[int, list[int]] = {}
        for members in chains:
            interior.update(members[:-1])
            chain_at_last[members[-1]] = members
            chain_at_first[members[0]] = members

        # ---- forward pass (tape order) -------------------------------
        for i, rec in enumerate(records):
            # Volatile/derived refills advance data streams (dropout RNG)
            # exactly once per consumer tensor, in forward order — even
            # ahead of dead nodes, so replay consumes the same random
            # numbers the eager epoch would.
            for spec in rec.parents:
                self._maybe_refill(rec, spec, index)
            if i not in reachable or i in interior:
                continue
            members = chain_at_last.get(i)
            self._current_name = rec.rule.name
            if members is not None and len(members) > 1:
                self._emit_chain_forward(members)
            elif not self._is_view(rec):
                rec.rule.forward(self, rec)
            self._current_name = ""

        # ---- backward pass (exact eager order) -----------------------
        root = records[self.root_index]
        seed = np.ones_like(root.tensor._data)
        root.gbuf = seed
        self._written.add(id(seed))
        self.plan.root_buf = root.tensor._data
        for t in reversed(topo):
            i = index.get(id(t))
            if i is None:
                continue  # leaf (parameter / input)
            rec = records[i]
            members = chain_at_first.get(i)
            if members is not None and len(members) > 1:
                self._current_name = "fused[" + "+".join(
                    records[j].rule.name for j in members) + "]"
                self._emit_chain_backward(members)
                self._current_name = ""
                continue
            if i in interior or (i in chain_at_last
                                 and len(chain_at_last[i]) > 1):
                continue  # handled at the chain's first-member position
            self._current_name = rec.rule.name
            rec.rule.backward(self, rec)
            self._current_name = ""

        # Expose gradients on the parameter leaves exactly as the eager
        # walk leaves them: owned, persistent arrays.
        param_grads = self.plan.param_grads

        def bind_grads():
            for cell in param_grads:
                cell.leaf.grad = cell.g
                cell.leaf._grad_owned = True
        self.plan.calls.append(bind_grads)
        self.plan.meta.append(("bind_grads", "backward", 0))

        for name, t in self.watch.items():
            self.plan.watch_bufs[name] = t._data
        return self.plan

    # -- pieces --------------------------------------------------------
    def _is_view(self, rec) -> bool:
        out = rec.tensor._data
        if out.base is None or not rec.parents:
            return False
        # pbuf (not raw access) so a parameter/persistent-constant parent
        # gets its storage-identity guard even when no call is emitted.
        return np.shares_memory(out, self.pbuf(rec.parents[0]))

    def _maybe_refill(self, rec, spec, index) -> None:
        kind = spec[0]
        if kind not in ("volatile", "derived") or \
                id(spec[1]) in self._refilled:
            return
        self._refilled.add(id(spec[1]))
        buf = spec[1]._data
        if kind == "volatile":
            provider = spec[2]
            self.add_call(rec, "forward",
                          lambda: np.copyto(buf, provider()))
            return
        src, fn = spec[2], spec[3]
        j = index.get(id(src))
        if j is not None:
            src_buf = self.records[j].tensor._data
        elif src._backward is None:
            self._guard(src)
            src_buf = src._data
        else:
            raise TraceInvalid(_reason("derived-source-outside"))
        self.add_call(rec, "forward", lambda: np.copyto(buf, fn(src_buf)))

    def _find_chains(self, reachable, consumers, pinned) -> list[list[int]]:
        """Maximal runs of fusible single-parent elementwise ops."""
        records = self.records
        in_chain: set[int] = set()
        chains: list[list[int]] = []

        def chainable(i) -> bool:
            rec = records[i]
            return rec.rule.fuse is not None and len(rec.parents) == 1

        for i in sorted(reachable):
            if i in in_chain or not chainable(i):
                continue
            members = [i]
            cur = i
            while (records[cur].rule.fuse == "interior"
                   and cur not in pinned
                   and len(consumers[cur]) == 1):
                nxt = consumers[cur][0]
                if nxt in in_chain or not chainable(nxt):
                    break
                if records[nxt].parents[0] != ("node", cur):
                    break
                members.append(nxt)
                cur = nxt
            if len(members) > 1:
                chains.append(members)
                in_chain.update(members)
        return chains

    def _chain_descr(self, members) -> list[tuple]:
        return [(self.records[j].rule.name, _chain_scalar(self.records[j]))
                for j in members]

    def _emit_chain_forward(self, members) -> None:
        records = self.records
        last = records[members[-1]]
        dst = last.tensor._data
        src = self.pbuf(records[members[0]].parents[0])
        ops = self._chain_descr(members)
        steps = [_chain_ops(name, scalar, dst)[0] for name, scalar in ops]
        first = steps[0]
        rest = steps[1:]

        def call():
            first(src, dst)
            for step in rest:
                step(dst, dst)
        self._current_name = "fused[" + "+".join(n for n, _ in ops) + "]"
        self.add_call(last, "forward", call)
        self.plan.fused_chains.append({
            "ops": ops,
            "shape": last.tensor.shape,
            "dtype": str(last.tensor._data.dtype),
        })

    def _emit_chain_backward(self, members) -> None:
        records = self.records
        last = records[members[-1]]
        first = records[members[0]]
        g = self.gbuf(last)
        s1 = np.empty_like(last.tensor._data)
        s2 = np.empty_like(last.tensor._data)
        transforms = []
        for j in reversed(members):
            rec = records[j]
            transforms.append(_chain_ops(
                rec.rule.name, _chain_scalar(rec), rec.tensor._data)[1])

        def fn():
            cur = g
            for transform in transforms:
                cur = transform(cur, s1, s2)
            return cur
        self.acc_fn(last, first.parents[0], fn)


# ----------------------------------------------------------------------
# The per-fit state machine
# ----------------------------------------------------------------------
class EpochJIT:
    """Capture → verify → replay controller for one fit's epoch loop.

    Usage (see :meth:`repro.training.trainer.Trainer.fit`)::

        jit = EpochJIT(tail=[set_loss, *hooks, step])
        for epoch in ...:
            if jit.replay():
                continue               # epoch ran from the compiled plan
            with jit.capture():        # no-op once disabled
                loss = forward(); loss.backward()
            jit.seal(loss)
            ... eager hooks / step ...

    ``tail`` closures are appended to the flat call list of every replay
    (loss readout, ``after_backward`` hooks, ``optimizer.step``), so a
    replayed epoch is one :meth:`_Plan.run` call.  Replay guard failures
    (parameter storage rebound) trigger a bounded number of retraces;
    structural verification failures disable the JIT for the rest of the
    fit (``disabled_reason`` says why).  An active anomaly mode skips
    replay for that epoch without burning a retrace — the sanitizer needs
    the eager graph.
    """

    def __init__(self, tail=(), max_retraces: int = 2):
        self._tail = tuple(tail)
        self._state = "capture1"
        self._retraces_left = max_retraces
        self._tape1: list[Tensor] | None = None
        self._root1: Tensor | None = None
        self._watch1: dict | None = None
        self._nodes: list[Tensor] = []
        self.plan: _Plan | None = None
        self.disabled_reason: str | None = None
        self.retrace_count = 0
        self.total_replays = 0

    # -- state ---------------------------------------------------------
    @property
    def ready(self) -> bool:
        return self._state == "ready"

    @property
    def wants_capture(self) -> bool:
        return self._state in ("capture1", "capture2")

    @property
    def off(self) -> bool:
        return self._state == "off"

    def _disable(self, reason: str) -> None:
        self._state = "off"
        self.disabled_reason = reason
        self._tape1 = self._root1 = self._watch1 = None
        self.plan = None

    def _invalidate(self, reason: str) -> None:
        """Guard failure: retrace if budget remains, else go eager for good."""
        self.plan = None
        self._tape1 = self._root1 = self._watch1 = None
        if self._retraces_left > 0:
            self._retraces_left -= 1
            self.retrace_count += 1
            self._state = "capture1"
        else:
            self._disable(f"{reason} (retrace budget exhausted)")

    # -- capture -------------------------------------------------------
    @contextlib.contextmanager
    def capture(self):
        """Record every graph-wired tensor created inside the block."""
        if not self.wants_capture or is_anomaly_enabled():
            # Anomaly mode rebuilds graphs with trace frames — capture
            # under it would freeze sanitizer bookkeeping into the plan.
            yield
            return
        self._nodes = []
        previous = _tensor_mod._TRACE_HOOK
        _tensor_mod.set_trace_hook(self._nodes.append)
        try:
            yield
        finally:
            _tensor_mod.set_trace_hook(previous)

    def seal(self, root: Tensor, watch: dict | None = None) -> None:
        """Finish a captured epoch; compiles after the second capture."""
        if not self.wants_capture:
            return
        if is_anomaly_enabled():
            return  # nothing was captured this epoch; try again next epoch
        nodes, self._nodes = self._nodes, []
        watch = dict(watch or {})
        if self._state == "capture1":
            self._tape1, self._root1, self._watch1 = nodes, root, watch
            self._state = "capture2"
            return
        # Verify+compile is the JIT's one-time cost; meter it so a profiled
        # fit attributes the capture epochs' overhead to a named span.
        prof = _active_profiler()
        start = prof._begin() if prof is not None else 0.0
        try:
            records = _verify(self._tape1, nodes, self._root1, root,
                              self._watch1, watch)
            root_index = next(i for i, rec in enumerate(records)
                              if rec.tensor is root)
            self.plan = _Compiler(records, root_index, watch).compile()
            self.plan.tail = self._tail
        except TraceInvalid as invalid:
            self._disable(str(invalid))
        else:
            self._state = "ready"
        finally:
            self._tape1 = self._root1 = self._watch1 = None
            if prof is not None:
                prof._end("autodiff", "trace.compile", "compile", start, 0)

    # -- replay --------------------------------------------------------
    def replay(self) -> bool:
        """Run one epoch from the plan; False means "run this epoch eager"."""
        if self._state != "ready":
            return False
        if is_anomaly_enabled():
            return False  # stay ready; replay resumes when the mode exits
        if not self.plan.guards_ok():
            self._invalidate(_reason("param-storage-rebound"))
            return False
        self.plan.run()
        self.total_replays += 1
        return True

    # -- results -------------------------------------------------------
    def loss_value(self) -> float:
        return float(self.plan.root_buf)

    def value(self, name: str) -> np.ndarray:
        """Current contents of a watched tensor's arena buffer."""
        return self.plan.watch_bufs[name]
