"""Composite differentiable functions built on :class:`repro.autodiff.Tensor`.

These are the numerically-careful building blocks the attention and loss
layers use: softmax with max-subtraction, mean-squared error matching the
paper's equation (1), etc.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = ["softmax", "log_softmax", "mse", "mae", "huber", "normalize_adjacency"]


def _neg_max_shift(x: Tensor, axis: int) -> Tensor:
    """Detached ``-max`` shift constant, annotated for trace replay.

    The value is ``np.negative`` of the max — exactly what the previous
    ``x - Tensor(max)`` spelling produced via ``__neg__`` on the detached
    constant, so the downstream add sees bit-identical operands.  The
    ``_trace_src`` annotation tells the trace JIT this constant is
    *derived*: on each replay it is recomputed from the current value of
    ``x``'s buffer instead of being treated as a frozen snapshot (the max
    moves every epoch once ``x`` depends on trained parameters).
    """

    def recompute(array: np.ndarray) -> np.ndarray:
        return -array.max(axis=axis, keepdims=True)

    shift = Tensor(-x.data.max(axis=axis, keepdims=True))
    shift._trace_src = ("derived", x, recompute)
    return shift


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` with the standard max-shift for stability.

    The shift is treated as a constant (detached), which leaves the gradient
    exact because softmax is shift-invariant.
    """
    shifted = x + _neg_max_shift(x, axis)
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (numerically stable)."""
    shifted = x + _neg_max_shift(x, axis)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def mse(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error over every element.

    This is exactly the inner part of the paper's equation (1): summed
    squared error divided by the total number of (time, variable) cells.
    """
    target = as_tensor(target)
    diff = prediction - Tensor(target.data.astype(prediction.dtype, copy=False))
    return (diff * diff).mean()


def mae(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean absolute error over every element."""
    target = as_tensor(target)
    return (prediction - target.detach()).abs().mean()


def huber(prediction: Tensor, target: Tensor | np.ndarray, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic within ``delta`` of the target, linear outside."""
    target = as_tensor(target)
    diff = prediction - target.detach()
    abs_diff = diff.abs()
    quadratic = diff * diff * 0.5
    linear = abs_diff * delta - 0.5 * delta * delta
    from .tensor import where

    # Huber's branch is inherently data-dependent; fits using it
    # fall back to the eager loop (see ema-gnn check).
    return where(abs_diff.data <= delta,  # repro: noqa[REPRO007]
                 quadratic, linear).mean()


def normalize_adjacency(adjacency: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
    """Symmetrically normalize a (non-negative) adjacency matrix.

    Computes ``D^{-1/2} (A + I) D^{-1/2}`` — the propagation operator used
    by GCN-style layers.  Isolated nodes get a zero row rather than NaN.
    This is a plain-numpy helper (graph matrices are treated as constants
    by every model except MTGNN's learned graph, which normalizes inside
    the autodiff graph).
    """
    a = np.asarray(adjacency, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {a.shape}")
    if (a < 0).any():
        raise ValueError("adjacency entries must be non-negative")
    if add_self_loops:
        a = a + np.eye(a.shape[0])
    degree = a.sum(axis=1)
    with np.errstate(divide="ignore"):
        inv_sqrt = 1.0 / np.sqrt(degree)
    inv_sqrt[~np.isfinite(inv_sqrt)] = 0.0
    from .tensor import get_default_dtype

    return ((a * inv_sqrt[:, None]) * inv_sqrt[None, :]).astype(get_default_dtype())
