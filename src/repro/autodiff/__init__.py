"""Reverse-mode autodiff engine (the repo's PyTorch substitute).

Public surface:

* :class:`Tensor` — numpy array with gradient tracking
* :func:`no_grad` — disable graph construction
* :func:`concat` / :func:`stack` / :func:`where` — multi-input graph ops
* :mod:`repro.autodiff.functional` — softmax, losses, adjacency normalizer
* :func:`check_gradients` — finite-difference verification
* :func:`detect_anomaly` — opt-in sanitizer: record creating ops, raise on
  the first non-finite gradient in ``backward()``
* :class:`EpochJIT` — trace-capture JIT: record one epoch, verify the
  next, replay a fused compiled plan for the rest (bit-identical)
"""

from .anomaly import detect_anomaly, is_anomaly_enabled
from .tensor import (Tensor, as_tensor, concat, get_default_dtype,
                     is_grad_enabled, no_grad, set_default_dtype,
                     set_trace_hook, stack, where)
from .functional import huber, log_softmax, mae, mse, normalize_adjacency, softmax
from .gradcheck import check_gradients, numerical_gradient
from .trace import EpochJIT, TraceInvalid

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "detect_anomaly",
    "is_anomaly_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "softmax",
    "log_softmax",
    "mse",
    "mae",
    "huber",
    "normalize_adjacency",
    "check_gradients",
    "numerical_gradient",
    "set_trace_hook",
    "EpochJIT",
    "TraceInvalid",
]
