"""A3TGCN — Attention Temporal Graph Convolutional Network (Bai et al. 2021).

The paper's representative of the Recurrent Graph Convolution (R-GCN)
family: a T-GCN (GCN + GRU) runs over the input window producing one hidden
state per node per step, a soft attention re-weights the steps, and a
per-node head maps the context vector to the 1-lag prediction.

The paper finds A3TGCN performs at LSTM level (~1.03 MSE) because of this
deliberately simple architecture — reproducing that *requires* keeping the
architecture simple, so no extra blocks are added here.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, softmax, stack
from ..nn import Dropout, Linear
from ..nn.module import Parameter
from .base import Forecaster
from .tgcn import TGCNCell

__all__ = ["A3TGCN"]


class A3TGCN(Forecaster):
    """``(S, L, V) -> T-GCN over L -> temporal attention -> (S, V)``.

    As in the released A3T-GCN implementation (and its PyTorch Geometric
    Temporal port), the temporal attention is a *learned parameter vector*
    over the window's periods, softmax-normalized — one global attention
    distribution, not conditioned on the hidden states.
    """

    requires_graph = True

    def __init__(self, num_variables: int, seq_len: int, adjacency: np.ndarray,
                 hidden_size: int = 32, dropout: float = 0.3,
                 rng: np.random.Generator | None = None):
        super().__init__(num_variables, seq_len)
        rng = rng if rng is not None else np.random.default_rng()
        self.hidden_size = hidden_size
        self.cell = TGCNCell(1, hidden_size, adjacency, rng=rng)
        self.attention = Parameter(rng.uniform(-0.1, 0.1, size=seq_len))
        self.dropout = Dropout(dropout, rng=rng)
        self.head = Linear(hidden_size, 1, rng=rng)

    def set_adjacency(self, adjacency: np.ndarray) -> None:
        self.cell.set_adjacency(adjacency)

    def forward(self, inputs: Tensor) -> Tensor:
        self._check_input(inputs)
        samples = inputs.shape[0]
        hidden = self.cell.initial_state(samples, self.num_variables)
        states = []
        for t in range(self.seq_len):
            step = inputs[:, t, :].reshape(samples, self.num_variables, 1)
            hidden = self.cell(step, hidden)
            states.append(hidden)
        if len(states) == 1:
            context = states[0]
        else:
            # (S, L, V, H) weighted by the global period attention -> (S, V, H)
            sequence = stack(states, axis=1)
            weights = softmax(self.attention, axis=0).reshape(1, self.seq_len, 1, 1)
            context = (sequence * weights).sum(axis=1)
        out = self.head(self.dropout(context))
        return out.reshape(samples, self.num_variables)
