"""T-GCN cell: the graph-convolutional GRU underlying A3TGCN.

Following Bai et al. (A3T-GCN) and the original T-GCN: at each step the
input signal and previous per-node hidden state are concatenated and passed
through graph convolutions to form GRU gates, so information mixes along
the variable graph while the recurrence tracks time.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, concat, no_grad
from ..nn import GCNConv
from ..nn.module import Module
from .base import Forecaster

__all__ = ["TGCNCell", "TGCNForecaster"]


class TGCNCell(Module):
    """Graph-convolutional GRU cell over per-node states.

    Faithful to the published T-GCN operator: the graph-convolution stage is
    the *two-layer* GCN ``GC(X) = Â ReLU(Â X W0) W1`` applied to the input
    signal, whose output then drives plain GRU gates together with the
    hidden state.  Two rounds of neighbourhood mixing per step dilute each
    node's own (scalar) signal — the architectural property behind A3TGCN's
    LSTM-level EMA performance in the paper.

    Input ``x``: ``(samples, nodes, in_features)``; hidden ``h``:
    ``(samples, nodes, hidden)``.
    """

    def __init__(self, in_features: int, hidden_size: int, adjacency: np.ndarray,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        from ..nn import Linear

        self.in_features = in_features
        self.hidden_size = hidden_size
        self.graph_conv1 = GCNConv(in_features, hidden_size, adjacency, rng=rng)
        self.graph_conv2 = GCNConv(hidden_size, hidden_size, adjacency, rng=rng)
        self.gates = Linear(2 * hidden_size, 2 * hidden_size, rng=rng)
        self.candidate = Linear(2 * hidden_size, hidden_size, rng=rng)
        # Bias the update gate toward remembering, as T-GCN initializes b=1.
        with no_grad():
            self.gates.bias.data[:hidden_size] = 1.0

    def set_adjacency(self, adjacency: np.ndarray) -> None:
        self.graph_conv1.set_adjacency(adjacency)
        self.graph_conv2.set_adjacency(adjacency)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(f"TGCNCell expected input feature size "
                             f"{self.in_features}, got {x.shape[-1]}")
        gc = self.graph_conv2(self.graph_conv1(x).relu())
        combined = concat([gc, h], axis=-1)
        gates = self.gates(combined).sigmoid()
        update = gates[..., : self.hidden_size]
        reset = gates[..., self.hidden_size:]
        candidate = self.candidate(concat([gc, reset * h], axis=-1)).tanh()
        return update * h + (1.0 - update) * candidate

    def initial_state(self, samples: int, nodes: int) -> Tensor:
        from ..autodiff.tensor import get_default_dtype

        return Tensor(np.zeros((samples, nodes, self.hidden_size),
                               dtype=get_default_dtype()))


class TGCNForecaster(Forecaster):
    """``(S, L, V) -> T-GCN over L -> last hidden state -> (S, V)``.

    The plain T-GCN of Zhao et al.: the recurrence's *final* per-node
    hidden state is the context (no temporal attention — that addition is
    exactly what turns this model into A3TGCN).  Kept in the registry as
    the ablation point between LSTM and A3TGCN: graph mixing without
    attention.
    """

    requires_graph = True

    def __init__(self, num_variables: int, seq_len: int, adjacency: np.ndarray,
                 hidden_size: int = 32, dropout: float = 0.3,
                 rng: np.random.Generator | None = None):
        super().__init__(num_variables, seq_len)
        rng = rng if rng is not None else np.random.default_rng()
        from ..nn import Dropout, Linear

        self.hidden_size = hidden_size
        self.cell = TGCNCell(1, hidden_size, adjacency, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.head = Linear(hidden_size, 1, rng=rng)

    def set_adjacency(self, adjacency: np.ndarray) -> None:
        self.cell.set_adjacency(adjacency)

    def forward(self, inputs: Tensor) -> Tensor:
        self._check_input(inputs)
        samples = inputs.shape[0]
        hidden = self.cell.initial_state(samples, self.num_variables)
        for t in range(self.seq_len):
            step = inputs[:, t, :].reshape(samples, self.num_variables, 1)
            hidden = self.cell(step, hidden)
        out = self.head(self.dropout(hidden))
        return out.reshape(samples, self.num_variables)
