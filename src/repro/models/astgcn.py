"""ASTGCN — Attention-Based Spatial-Temporal GCN (Guo et al., adapted per
the EMA paper's setup).

One spatial-temporal block, as the paper's short windows (<= 5 steps)
motivate ("no need to incorporate a very deep network"):

1. **Temporal attention** ``E (S, L, L)`` re-weights the window's steps.
2. **Spatial attention** ``S_att (S, V, V)`` modulates node mixing.
3. **Chebyshev graph convolution** (order ``K`` = the paper's kernel k=3)
   with the spatial attention applied elementwise to each polynomial term.
4. **Temporal convolution** along the window (causal, kernel 3).
5. Residual connection from the input and a per-node output head that reads
   the full convolved window.

Input/Output matches :class:`Forecaster`: ``(S, L, V) -> (S, V)``.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..nn import (ChebConv, Dropout, LayerNorm, Linear, SpatialAttention,
                  TemporalAttention, TemporalConv2d)
from .base import Forecaster

__all__ = ["ASTGCN"]


class ASTGCN(Forecaster):
    """Single-block ASTGCN for 1-lag EMA forecasting."""

    requires_graph = True

    def __init__(self, num_variables: int, seq_len: int, adjacency: np.ndarray,
                 hidden_size: int = 32, cheb_order: int = 3, kernel_size: int = 3,
                 dropout: float = 0.3, rng: np.random.Generator | None = None):
        super().__init__(num_variables, seq_len)
        rng = rng if rng is not None else np.random.default_rng()
        self.hidden_size = hidden_size
        self.temporal_attention = TemporalAttention(
            num_variables, 1, seq_len, rng=rng)
        self.spatial_attention = SpatialAttention(
            num_variables, 1, seq_len, rng=rng)
        self.cheb = ChebConv(1, hidden_size, adjacency, order=cheb_order, rng=rng)
        self.time_conv = TemporalConv2d(hidden_size, hidden_size, kernel_size,
                                        causal_pad=True, rng=rng)
        self.residual_conv = TemporalConv2d(1, hidden_size, 1, rng=rng)
        self.norm = LayerNorm(hidden_size)
        self.dropout = Dropout(dropout, rng=rng)
        self.head = Linear(hidden_size * seq_len, 1, rng=rng)

    def set_adjacency(self, adjacency: np.ndarray) -> None:
        self.cheb.set_adjacency(adjacency)

    def forward(self, inputs: Tensor) -> Tensor:
        self._check_input(inputs)
        samples = inputs.shape[0]
        # (S, L, V) -> (S, V, 1, L)
        x = inputs.transpose(0, 2, 1).reshape(samples, self.num_variables, 1, self.seq_len)

        # 1. temporal attention: mix window steps.
        e = self.temporal_attention(x)                    # (S, L, L)
        flat = x.reshape(samples, self.num_variables, self.seq_len)
        x_t = (flat @ e).reshape(samples, self.num_variables, 1, self.seq_len)

        # 2. spatial attention from the re-weighted signal.
        s_att = self.spatial_attention(x_t)               # (S, V, V)

        # 3. Chebyshev conv with attention-modulated operators, all window
        # steps in one batched matmul per order: (S, V, 1, L) -> (S, L, V, 1)
        # and the (S, 1, V, V) operator broadcasts over L inside ChebConv —
        # same arithmetic as the former per-step Python loop, minus L-1
        # matmul dispatches and L redundant ``T_k * S_att`` products.
        steps_in = x_t.transpose(0, 3, 1, 2)              # (S, L, V, 1)
        spatial = self.cheb(steps_in, spatial_attention=s_att).relu()
        spatial = spatial.transpose(0, 2, 3, 1)           # (S, V, H, L)

        # 4. temporal convolution over the window.
        conv_in = spatial.transpose(0, 2, 1, 3)           # (S, H, V, L)
        conv_out = self.time_conv(conv_in)                # (S, H, V, L)

        # 5. residual from raw input + layer norm over channels.
        residual = self.residual_conv(x.transpose(0, 2, 1, 3))  # (S, H, V, L)
        merged = (conv_out + residual).relu()
        merged = self.norm(merged.transpose(0, 2, 3, 1))  # (S, V, L, H)

        # head reads the whole convolved window per node.
        features = self.dropout(merged).reshape(
            samples, self.num_variables, self.seq_len * self.hidden_size)
        return self.head(features).reshape(samples, self.num_variables)
