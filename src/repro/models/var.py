"""Classical baselines: ridge-regularized VAR and the naive mean predictor.

The paper's related work (section II-A) grounds EMA forecasting in Vector
Autoregression — "most of the studies focus on applying linear statistical
models, like the VAR model" — and motivates GNNs by VAR's instability on
high-dimensional, interdependent EMA variables.  These closed-form
baselines make that comparison runnable:

* :class:`VARForecaster` — VAR(p) fit by ridge regression (one shot, no
  gradient training); ``p`` = the window length, so Seq1/Seq2/Seq5 map to
  VAR(1)/VAR(2)/VAR(5).
* :class:`NaiveMeanForecaster` — predicts each variable's training mean
  (≈ 0 after per-individual z-normalization), the MSE ≈ 1.0 anchor used
  throughout EXPERIMENTS.md.

Both satisfy the :class:`Forecaster` interface; ``fit`` is closed-form so
the gradient :class:`~repro.training.Trainer` is bypassed via
:meth:`fit_windows`.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..data.windows import WindowSet
from .base import Forecaster

__all__ = ["VARForecaster", "NaiveMeanForecaster"]


class VARForecaster(Forecaster):
    """VAR(p) via ridge regression on flattened lag windows.

    ``x_t = c + sum_k A_k x_{t-k} + e`` — estimated jointly as one linear
    map from the flattened window ``(L * V,)`` to ``(V,)`` with an L2
    penalty, the standard stabilization for EMA's short, collinear series.
    """

    requires_graph = False

    def __init__(self, num_variables: int, seq_len: int, ridge: float = 10.0,
                 rng: np.random.Generator | None = None):
        super().__init__(num_variables, seq_len)
        if ridge < 0:
            raise ValueError(f"ridge must be non-negative, got {ridge}")
        self.ridge = ridge
        features = num_variables * seq_len
        self._coefficients = np.zeros((features, num_variables))
        self._intercept = np.zeros(num_variables)
        self._fitted = False

    def fit_windows(self, windows: WindowSet) -> "VARForecaster":
        """Closed-form ridge fit on a window set."""
        # repro: noqa[REPRO005] — closed-form ridge solve is always float64
        x = windows.inputs.reshape(windows.num_samples, -1).astype(np.float64)  # repro: noqa[REPRO005]
        y = windows.targets.astype(np.float64)  # repro: noqa[REPRO005]
        x_mean = x.mean(axis=0)
        y_mean = y.mean(axis=0)
        xc, yc = x - x_mean, y - y_mean
        gram = xc.T @ xc + self.ridge * np.eye(x.shape[1])
        self._coefficients = np.linalg.solve(gram, xc.T @ yc)
        self._intercept = y_mean - x_mean @ self._coefficients
        self._fitted = True
        return self

    def coefficient_matrices(self) -> np.ndarray:
        """The fitted lag matrices, shaped ``(seq_len, V, V)``.

        ``result[k][i, j]`` is the effect of variable *j* at lag
        ``seq_len - k`` on variable *i* — the "network of co-occurring
        variables" interpretation EMA studies draw from VAR fits.
        """
        per_lag = self._coefficients.reshape(self.seq_len, self.num_variables,
                                             self.num_variables)
        return np.transpose(per_lag, (0, 2, 1))

    def get_extra_state(self) -> dict:
        """Fitted closed-form state, so checkpoints/the store cover VAR."""
        return {"coefficients": self._coefficients,
                "intercept": self._intercept,
                "fitted": np.asarray(1.0 if self._fitted else 0.0)}

    def set_extra_state(self, state: dict) -> None:
        self._coefficients = np.asarray(state["coefficients"],
                                        dtype=np.float64)  # repro: noqa[REPRO005] — matches the float64 fit
        self._intercept = np.asarray(state["intercept"],
                                     dtype=np.float64)  # repro: noqa[REPRO005] — matches the float64 fit
        self._fitted = bool(np.asarray(state["fitted"]))

    def forward(self, inputs: Tensor) -> Tensor:
        self._check_input(inputs)
        flat = inputs.data.reshape(inputs.shape[0], -1)
        prediction = flat @ self._coefficients + self._intercept
        # Closed-form model: never trained, never traced.
        return Tensor(prediction.astype(inputs.dtype))  # repro: noqa[REPRO011]

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("VARForecaster.predict called before fit_windows")
        flat = np.asarray(inputs, dtype=np.float64).reshape(len(inputs), -1)  # repro: noqa[REPRO005] — matches the float64 fit
        return flat @ self._coefficients + self._intercept


class NaiveMeanForecaster(Forecaster):
    """Predicts each variable's training mean regardless of input."""

    requires_graph = False

    def __init__(self, num_variables: int, seq_len: int,
                 rng: np.random.Generator | None = None):
        super().__init__(num_variables, seq_len)
        self._mean = np.zeros(num_variables)

    def fit_windows(self, windows: WindowSet) -> "NaiveMeanForecaster":
        self._mean = windows.targets.astype(np.float64).mean(axis=0)  # repro: noqa[REPRO005] — exact mean
        return self

    def get_extra_state(self) -> dict:
        """Fitted training mean, so checkpoints/the store cover the baseline."""
        return {"mean": self._mean}

    def set_extra_state(self, state: dict) -> None:
        self._mean = np.asarray(state["mean"], dtype=np.float64)  # repro: noqa[REPRO005] — matches the float64 fit

    def forward(self, inputs: Tensor) -> Tensor:
        self._check_input(inputs)
        out = np.broadcast_to(self._mean, (inputs.shape[0], self.num_variables))
        # Closed-form model: never trained, never traced.
        return Tensor(out.astype(inputs.dtype).copy())  # repro: noqa[REPRO011]

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        return np.broadcast_to(self._mean,
                               (len(inputs), self.num_variables)).copy()
