"""Common forecaster interface.

Every model consumes a window batch ``(samples, seq_len, variables)`` and
predicts the next step for all variables ``(samples, variables)`` — the
paper's 1-lag forecasting task (section III-B).  Graph models additionally
hold a variable adjacency that can be swapped (Experiment C feeds
MTGNN-learned graphs back into A3TGCN/ASTGCN via :meth:`set_adjacency`).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, no_grad
from ..nn import Module

__all__ = ["Forecaster"]


class Forecaster(Module):
    """Base class for 1-lag EMA forecasters.

    Attributes
    ----------
    requires_graph:
        Whether construction/operation needs a variable adjacency.
    num_variables / seq_len:
        The ``V`` and ``L`` the model was built for.
    """

    requires_graph: bool = False

    def __init__(self, num_variables: int, seq_len: int):
        super().__init__()
        if num_variables < 1 or seq_len < 1:
            raise ValueError("num_variables and seq_len must be >= 1")
        self.num_variables = num_variables
        self.seq_len = seq_len

    def _check_input(self, inputs: Tensor) -> None:
        if inputs.ndim != 3 or inputs.shape[1] != self.seq_len \
                or inputs.shape[2] != self.num_variables:
            raise ValueError(
                f"{type(self).__name__} expects (samples, {self.seq_len}, "
                f"{self.num_variables}), got {inputs.shape}")

    def set_adjacency(self, adjacency: np.ndarray) -> None:
        """Swap the variable graph (no-op for graph-free models)."""
        if self.requires_graph:
            raise NotImplementedError(
                f"{type(self).__name__} must implement set_adjacency")

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Numpy-in / numpy-out inference in eval mode without autodiff."""
        from ..autodiff.tensor import get_default_dtype

        was_training = self.training
        self.eval()
        try:
            with no_grad():
                out = self.forward(
                    Tensor(np.asarray(inputs, dtype=get_default_dtype())))
        finally:
            self.train(was_training)
        return out.data
