"""Baseline LSTM forecaster (paper's Experiment-A reference model).

A plain multivariate LSTM: all ``V`` variables enter jointly as the feature
vector of each time step, the final hidden state is projected back to ``V``
outputs.  No graph information is used — this is exactly the baseline the
GNNs are compared against.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..nn import Dropout, Linear, LSTM
from .base import Forecaster

__all__ = ["LSTMForecaster"]


class LSTMForecaster(Forecaster):
    """``(S, L, V) -> LSTM -> dropout -> linear -> (S, V)``."""

    requires_graph = False

    def __init__(self, num_variables: int, seq_len: int, hidden_size: int = 32,
                 num_layers: int = 1, dropout: float = 0.3,
                 rng: np.random.Generator | None = None):
        super().__init__(num_variables, seq_len)
        rng = rng if rng is not None else np.random.default_rng()
        self.hidden_size = hidden_size
        self.lstm = LSTM(num_variables, hidden_size, num_layers=num_layers, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.head = Linear(hidden_size, num_variables, rng=rng)

    def forward(self, inputs: Tensor) -> Tensor:
        self._check_input(inputs)
        _, (hidden, _) = self.lstm(inputs)
        return self.head(self.dropout(hidden))
