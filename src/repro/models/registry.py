"""Model factory + hyperparameter bundle (paper section V-D).

``ModelConfig`` captures the paper's tuned hyperparameters (32 hidden units
everywhere, kernel size 3, dropout 0.3); ``create_model`` builds any
registered forecaster by name with a deterministic seed.

``MODEL_REGISTRY`` is the authoritative name → :class:`ModelSpec` table:
the paper's Table-I grid (``MODEL_NAMES``), the T-GCN ablation point, and
the closed-form baselines.  The static fast-path analyzer
(:mod:`repro.analysis.fastpath`, ``ema-gnn check``) sweeps this registry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .a3tgcn import A3TGCN
from .astgcn import ASTGCN
from .base import Forecaster
from .lstm import LSTMForecaster
from .mtgnn import MTGNN
from .tgcn import TGCNForecaster
from .var import NaiveMeanForecaster, VARForecaster

__all__ = ["ModelConfig", "ModelSpec", "MODEL_NAMES", "MODEL_REGISTRY",
           "create_model"]

#: The paper's Table-I gradient-trained grid (kept separate from the full
#: registry so experiment defaults do not silently widen).
MODEL_NAMES = ("lstm", "a3tgcn", "astgcn", "mtgnn")


@dataclass(frozen=True)
class ModelSpec:
    """Registry entry describing how a model trains and what it needs."""

    name: str
    #: "gradient" models run the epoch Trainer (and may JIT/stack);
    #: "closed-form" models fit in one shot via ``fit_windows``.
    family: str
    #: Whether construction needs a variable adjacency.
    requires_graph: bool
    description: str


MODEL_REGISTRY: dict[str, ModelSpec] = {spec.name: spec for spec in (
    ModelSpec("lstm", "gradient", False,
              "LSTM baseline (no graph): stacked-LSTM over the window"),
    ModelSpec("tgcn", "gradient", True,
              "T-GCN: graph-convolutional GRU, last hidden state as "
              "context (A3TGCN minus attention)"),
    ModelSpec("a3tgcn", "gradient", True,
              "A3T-GCN: T-GCN + learned temporal attention over periods"),
    ModelSpec("astgcn", "gradient", True,
              "ASTGCN: spatial/temporal attention + Chebyshev graph conv "
              "+ temporal convolution"),
    ModelSpec("mtgnn", "gradient", True,
              "MTGNN: learned graph + dilated temporal inception + "
              "mix-hop propagation"),
    ModelSpec("var", "closed-form", False,
              "VAR(p) via ridge regression (closed-form, no epochs)"),
    ModelSpec("naive-mean", "closed-form", False,
              "Training-mean predictor (the MSE ~ 1.0 anchor)"),
)}


@dataclass(frozen=True)
class ModelConfig:
    """Shared hyperparameters (defaults = the paper's section V-D)."""

    hidden_size: int = 32
    dropout: float = 0.3
    kernel_size: int = 3
    cheb_order: int = 3
    mtgnn_layers: int = 2
    mtgnn_embedding_dim: int = 8
    mtgnn_top_k: int | None = None
    mtgnn_use_graph_learning: bool = True

    def __post_init__(self):
        if self.hidden_size < 1:
            raise ValueError("hidden_size must be >= 1")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")


def create_model(name: str, num_variables: int, seq_len: int,
                 adjacency: np.ndarray | None = None,
                 config: ModelConfig | None = None,
                 seed: int = 0) -> Forecaster:
    """Build a forecaster by name.

    ``adjacency`` is required for the graph models (for MTGNN it seeds the
    graph learner unless ``config.mtgnn_use_graph_learning`` is False, in
    which case it is used as a fixed graph).
    """
    config = config if config is not None else ModelConfig()
    rng = np.random.default_rng(seed)
    name = name.lower()
    if name == "lstm":
        return LSTMForecaster(num_variables, seq_len,
                              hidden_size=config.hidden_size,
                              dropout=config.dropout, rng=rng)
    if name in ("tgcn", "a3tgcn", "astgcn") and adjacency is None:
        raise ValueError(f"{name} requires an adjacency matrix")
    if name == "tgcn":
        return TGCNForecaster(num_variables, seq_len, adjacency,
                              hidden_size=config.hidden_size,
                              dropout=config.dropout, rng=rng)
    if name == "a3tgcn":
        return A3TGCN(num_variables, seq_len, adjacency,
                      hidden_size=config.hidden_size,
                      dropout=config.dropout, rng=rng)
    if name == "astgcn":
        return ASTGCN(num_variables, seq_len, adjacency,
                      hidden_size=config.hidden_size,
                      cheb_order=config.cheb_order,
                      kernel_size=config.kernel_size,
                      dropout=config.dropout, rng=rng)
    if name == "mtgnn":
        return MTGNN(num_variables, seq_len,
                     initial_adjacency=adjacency,
                     use_graph_learning=config.mtgnn_use_graph_learning,
                     hidden_size=config.hidden_size,
                     num_layers=config.mtgnn_layers,
                     embedding_dim=config.mtgnn_embedding_dim,
                     top_k=config.mtgnn_top_k,
                     dropout=config.dropout, rng=rng)
    if name == "var":
        return VARForecaster(num_variables, seq_len, rng=rng)
    if name == "naive-mean":
        return NaiveMeanForecaster(num_variables, seq_len, rng=rng)
    raise ValueError(f"unknown model {name!r}; expected one of "
                     f"{tuple(MODEL_REGISTRY)}")
