"""MTGNN — Multivariate Time Series GNN (Wu et al., KDD 2020), scaled to the
EMA paper's setting.

The distinguishing feature is the **graph-learning module**: node embeddings
are trained jointly with the forecaster, so the adjacency itself is
optimized against the training loss.  Per the EMA paper's Experiment C, the
learner can start from a static similarity graph ("starting from an initial
graph structure or a random one") and the refined graph can be exported for
other models.

Architecture (per the source paper, at the depth the EMA windows warrant):

* 1x1 start convolution into residual channels;
* ``num_layers`` blocks of gated dilated-inception temporal convolution
  (tanh filter x sigmoid gate), each followed by mix-hop graph propagation
  run in both edge directions (A and A^T) and a residual connection;
* per-block skip connections into a skip accumulator;
* output head reading the skip state at the final time position.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, no_grad
from ..nn import (DilatedInception, Dropout, GraphLearner, LayerNorm, Linear,
                  MixHopPropagation, TemporalConv2d)
from ..nn.container import ModuleList
from .base import Forecaster

__all__ = ["MTGNN"]


class MTGNN(Forecaster):
    """MTGNN forecaster with optional graph learning.

    Parameters
    ----------
    initial_adjacency:
        Static graph.  With ``use_graph_learning=True`` it warm-starts the
        learner's node embeddings; with ``False`` it is used as a fixed
        propagation graph.  ``None`` (learning mode only) starts from random
        embeddings — the paper's MTGNN-with-random-graph condition.
    top_k:
        Learned-graph sparsity (edges kept per node); defaults to V // 3,
        mirroring MTGNN's sparse learned graphs.
    """

    requires_graph = False  # can operate purely on its learned graph

    def __init__(self, num_variables: int, seq_len: int,
                 initial_adjacency: np.ndarray | None = None,
                 use_graph_learning: bool = True,
                 hidden_size: int = 32, num_layers: int = 2,
                 embedding_dim: int = 8, top_k: int | None = None,
                 mixhop_depth: int = 2, dropout: float = 0.3,
                 custom_graph_learner=None,
                 rng: np.random.Generator | None = None):
        super().__init__(num_variables, seq_len)
        rng = rng if rng is not None else np.random.default_rng()
        if not use_graph_learning and initial_adjacency is None \
                and custom_graph_learner is None:
            raise ValueError("static mode needs initial_adjacency")
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        if custom_graph_learner is not None:
            # Alternative structure-learning module (e.g. GTSGraphLearner):
            # anything exposing forward() -> Tensor and learned_adjacency().
            self.use_graph_learning = True
            self.graph_learner = custom_graph_learner
            self._static_adjacency = None
        elif use_graph_learning:
            self.use_graph_learning = True
            if top_k is None:
                top_k = max(2, num_variables // 3)
            self.graph_learner = GraphLearner(
                num_variables, embedding_dim=embedding_dim, top_k=top_k,
                initial_adjacency=initial_adjacency, rng=rng)
            self._static_adjacency = None
        else:
            self.use_graph_learning = False
            self.graph_learner = None
            self._static_adjacency = np.asarray(initial_adjacency, dtype=np.float64)  # repro: noqa[REPRO005] — graph matrices are float64 constants
        #: Static mode: memoized row-normalized (A, A^T) propagation pair,
        #: rebuilt lazily after set_adjacency().  Learned mode never uses it.
        self._static_props = None

        c = hidden_size
        self.start_conv = TemporalConv2d(1, c, 1, rng=rng)
        self.filter_convs = ModuleList()
        self.gate_convs = ModuleList()
        self.skip_convs = ModuleList()
        self.graph_convs_fwd = ModuleList()
        self.graph_convs_bwd = ModuleList()
        self.norms = ModuleList()
        for layer in range(num_layers):
            dilation = 2 ** layer
            self.filter_convs.append(
                DilatedInception(c, c, kernel_sizes=(2, 3), dilation=dilation, rng=rng))
            self.gate_convs.append(
                DilatedInception(c, c, kernel_sizes=(2, 3), dilation=dilation, rng=rng))
            self.skip_convs.append(TemporalConv2d(c, c, 1, rng=rng))
            self.graph_convs_fwd.append(
                MixHopPropagation(c, c, depth=mixhop_depth, rng=rng))
            self.graph_convs_bwd.append(
                MixHopPropagation(c, c, depth=mixhop_depth, rng=rng))
            self.norms.append(LayerNorm(c))
        self.skip_start = TemporalConv2d(1, c, 1, rng=rng)
        self.skip_end = TemporalConv2d(c, c, 1, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.head_hidden = Linear(c, c, rng=rng)
        self.head_out = Linear(c, 1, rng=rng)

    # ------------------------------------------------------------------
    # Graph access
    # ------------------------------------------------------------------
    def current_adjacency(self) -> Tensor:
        """Adjacency used this forward pass (inside the graph when learned)."""
        if self.use_graph_learning:
            return self.graph_learner()
        return Tensor(self._static_adjacency)

    def learned_graph(self) -> np.ndarray:
        """Export the (learned or static) adjacency as numpy (Experiment C)."""
        if self.use_graph_learning:
            return self.graph_learner.learned_adjacency()
        return self._static_adjacency.copy()

    def set_adjacency(self, adjacency: np.ndarray) -> None:
        """Replace the static graph / re-warm-start the learner."""
        adjacency = np.asarray(adjacency, dtype=np.float64)  # repro: noqa[REPRO005] — spectral warm start needs full precision
        if self.use_graph_learning and not isinstance(self.graph_learner,
                                                      GraphLearner):
            raise NotImplementedError(
                "warm-starting is only defined for the adaptive GraphLearner")
        if self.use_graph_learning:
            rng = np.random.default_rng(0)
            e1, e2 = GraphLearner._spectral_warm_start(
                adjacency, self.graph_learner.embedding_dim, rng)
            with no_grad():
                self.graph_learner.emb1.copy_(e1)
                self.graph_learner.emb2.copy_(e2)
        else:
            self._static_adjacency = adjacency
            self._static_props = None

    def _static_propagations(self) -> tuple:
        """Row-normalized ``(Â, Â^T)`` operators for the constant graph.

        Computed once per graph through
        :func:`repro.nn.graphcache.cached_row_normalized` — the same
        arithmetic :meth:`MixHopPropagation._row_normalize` ran inside the
        autodiff graph on every forward pass — and reused across epochs.
        When the density autoswitch routes the graph sparse, the pair is
        returned as :class:`~repro.nn.sparse.CSRMatrix` factorizations of
        those same cached operators instead (the graph operators are
        float64 constants, so the decision uses their own dtype).
        """
        if self._static_props is None:
            from ..nn.graphcache import (cached_row_normalized,
                                         cached_sparse_row_normalized)
            from ..nn.sparse import should_use_sparse

            base = self._static_adjacency
            fwd = cached_row_normalized(base)
            density = np.count_nonzero(fwd) / fwd.size
            if should_use_sparse(fwd.shape[0], density, fwd.dtype):
                self._static_props = (
                    cached_sparse_row_normalized(base),
                    cached_sparse_row_normalized(base.T),
                )
            else:
                self._static_props = (
                    Tensor(fwd),
                    Tensor(cached_row_normalized(base.T)),
                )
        return self._static_props

    # ------------------------------------------------------------------
    def _graph_mix(self, x: Tensor, layer: int,
                   adjacency: Tensor | None = None,
                   propagations: tuple | None = None) -> Tensor:
        """Mix-hop propagation in both edge directions on (S, C, V, L)."""
        s, c, v, l = x.shape
        # (S, C, V, L) -> (S, L, V, C): propagate over V for every position.
        per_node = x.transpose(0, 3, 2, 1)
        if propagations is not None:
            prop_fwd, prop_bwd = propagations
            fwd = self.graph_convs_fwd[layer](per_node,
                                              propagation=prop_fwd)
            bwd = self.graph_convs_bwd[layer](per_node,
                                              propagation=prop_bwd)
        else:
            fwd = self.graph_convs_fwd[layer](per_node, adjacency)
            bwd = self.graph_convs_bwd[layer](per_node, adjacency.T)
        mixed = fwd + bwd
        return mixed.transpose(0, 3, 2, 1)

    def forward(self, inputs: Tensor) -> Tensor:
        self._check_input(inputs)
        samples = inputs.shape[0]
        if self.use_graph_learning:
            adjacency, propagations = self.current_adjacency(), None
        else:
            adjacency, propagations = None, self._static_propagations()
        # (S, L, V) -> (S, 1, V, L)
        x = inputs.transpose(0, 2, 1).reshape(samples, 1, self.num_variables, self.seq_len)
        skip = self.skip_start(x)
        x = self.start_conv(x)
        for layer in range(self.num_layers):
            residual = x
            filt = self.filter_convs[layer](x).tanh()
            gate = self.gate_convs[layer](x).sigmoid()
            x = self.dropout(filt * gate)
            skip = skip + self.skip_convs[layer](x)
            x = self._graph_mix(x, layer, adjacency=adjacency,
                                propagations=propagations)
            x = x + residual
            # Per-layer normalization over channels (canonical MTGNN).
            x = self.norms[layer](x.transpose(0, 2, 3, 1)).transpose(0, 3, 1, 2)
        # Final skip (canonical skipE): without it the last layer's graph
        # convolution would never reach the output head.
        skip = skip + self.skip_end(x)
        # Read the final time position of the skip accumulator.
        final = skip[:, :, :, -1].transpose(0, 2, 1)   # (S, V, C)
        hidden = self.head_hidden(final.relu()).relu()
        return self.head_out(hidden).reshape(samples, self.num_variables)
