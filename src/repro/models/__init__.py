"""The paper's four forecasters: LSTM baseline + three spatio-temporal GNNs."""

from .base import Forecaster
from .lstm import LSTMForecaster
from .tgcn import TGCNCell
from .a3tgcn import A3TGCN
from .astgcn import ASTGCN
from .mtgnn import MTGNN
from .var import NaiveMeanForecaster, VARForecaster
from .registry import MODEL_NAMES, ModelConfig, create_model

__all__ = ["Forecaster", "LSTMForecaster", "TGCNCell", "A3TGCN", "ASTGCN",
           "MTGNN", "VARForecaster", "NaiveMeanForecaster",
           "ModelConfig", "MODEL_NAMES", "create_model"]
