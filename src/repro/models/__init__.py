"""The paper's four forecasters: LSTM baseline + three spatio-temporal GNNs."""

from .base import Forecaster
from .lstm import LSTMForecaster
from .tgcn import TGCNCell, TGCNForecaster
from .a3tgcn import A3TGCN
from .astgcn import ASTGCN
from .mtgnn import MTGNN
from .var import NaiveMeanForecaster, VARForecaster
from .registry import (MODEL_NAMES, MODEL_REGISTRY, ModelConfig, ModelSpec,
                       create_model)

__all__ = ["Forecaster", "LSTMForecaster", "TGCNCell", "TGCNForecaster",
           "A3TGCN", "ASTGCN", "MTGNN", "VARForecaster",
           "NaiveMeanForecaster", "ModelConfig", "ModelSpec", "MODEL_NAMES",
           "MODEL_REGISTRY", "create_model"]
