"""Request/response front end over the inference engine.

The CLI's ``ema-gnn serve`` is deliberately transport-free: the repo has
no web framework (and must not grow one), so the service speaks JSON
Lines over files/stdio — one request object per line in, one outcome
object per line out.  Anything that can write JSONL (a socket shim, a
cron job, a test) can drive it, and the batching/timeout/isolation
semantics live in :mod:`repro.serving.engine` where they are unit-tested
without any I/O.

Request object::

    {"id": "r1", "individual": "p03", "window": [[...], ...],
     "model": "a3tgcn", "timeout": 0.5}

``window``/``model``/``timeout``/``id`` are optional — a missing window
serves the artifact's stored ``window_tail`` (the "what's next for this
individual right now?" query).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .engine import InferenceEngine, RequestFailure
from .store import ModelStore

__all__ = ["ForecastService", "outcome_to_dict"]


def outcome_to_dict(outcome) -> dict:
    """JSON-ready rendering of an engine outcome (response or failure)."""
    if isinstance(outcome, RequestFailure):
        return {"id": outcome.request_id, "individual": outcome.identifier,
                "ok": False, "kind": outcome.kind,
                "error_type": outcome.error_type, "message": outcome.message,
                "elapsed": outcome.elapsed}
    return {"id": outcome.request_id, "individual": outcome.identifier,
            "ok": True, "model": outcome.model_name,
            "prediction": np.asarray(outcome.prediction).tolist(),
            "batched": outcome.batched, "elapsed": outcome.elapsed}


class ForecastService:
    """JSONL forecast service bound to one store version."""

    def __init__(self, store: "ModelStore | str | Path",
                 version: str | None = None, *, max_batch_size: int = 32,
                 max_linger: float = 0.05, use_stacked: bool = True,
                 default_timeout: float | None = None, strict: bool = False):
        if not isinstance(store, ModelStore):
            store = ModelStore(store)
        self.store = store
        self.shards = store.load_cohort(version, strict=strict)
        self.version = self.shards[0].version
        self.default_timeout = default_timeout
        self.engine = InferenceEngine(self.shards,
                                      max_batch_size=max_batch_size,
                                      max_linger=max_linger,
                                      use_stacked=use_stacked)

    def handle(self, request: dict) -> "list[dict]":
        """Submit one parsed request; returns any outcomes that flushed."""
        if not isinstance(request, dict):
            return [{"id": None, "individual": None, "ok": False,
                     "kind": "exception", "error_type": "TypeError",
                     "message": f"request must be a JSON object, got "
                                f"{type(request).__name__}"}]
        timeout = request.get("timeout", self.default_timeout)
        outcomes = self.engine.submit(
            request.get("individual"),
            window=request.get("window"),
            model_name=request.get("model"),
            timeout=timeout,
            request_id=request.get("id"))
        return [outcome_to_dict(outcome) for outcome in outcomes]

    def run(self, lines) -> "list[dict]":
        """Drive the engine over an iterable of JSONL request lines.

        Malformed JSON lines degrade to failure objects (the stream
        keeps flowing — request isolation extends to parsing).  The
        final flush drains whatever the batching window still holds.
        """
        results: "list[dict]" = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except ValueError as error:
                results.append({"id": None, "individual": None, "ok": False,
                                "kind": "exception",
                                "error_type": "JSONDecodeError",
                                "message": str(error)})
                continue
            results.extend(self.handle(request))
            results.extend(outcome_to_dict(outcome)
                           for outcome in self.engine.poll())
        results.extend(outcome_to_dict(outcome)
                       for outcome in self.engine.flush())
        return results

    def demo_requests(self, limit: int | None = None) -> "list[dict]":
        """One stored-tail request per served (individual, model) pair.

        The smoke workload for ``ema-gnn serve --demo`` and CI: exercises
        every shard without the caller needing any data on hand.
        """
        requests = []
        for shard in self.shards:
            for identifier, artifact in shard.artifacts.items():
                if artifact.window_tail is None:
                    continue
                requests.append({"id": f"demo-{len(requests)}",
                                 "individual": identifier,
                                 "model": shard.model_name})
        return requests[:limit] if limit is not None else requests
