"""Versioned, content-addressed on-disk store of fitted cohorts.

The ROADMAP's serving story starts here: training produces one small
model *per individual*, and a forecast service must reload exactly what
was trained — weights, but also the individual's graph (the paper's
thesis is that the graph IS part of the model) and the provenance needed
to rebuild the surrounding computation bit-identically (dtype,
construction method/GDT/seed, config digests, normalization stats).

Layout (one directory per store)::

    store/
      objects/<sha1>.npz      # content-addressed per-individual payloads
      versions/<version>.json # manifests: entry metadata -> object hashes

Content addressing uses the same discipline as
:mod:`repro.nn.graphcache`: an object's address is the SHA-1 over its
arrays' *logical* content (name, shape, dtype, payload bytes), not over
the npz container — zip metadata (timestamps) never perturbs the
address, and two versions sharing an unchanged individual share one
object file.  On load every object is re-hashed, so silent corruption is
detected; a corrupt or missing object degrades that entry with a
``RuntimeWarning`` — the same partial-tolerance contract as
:class:`~repro.training.parallel.CohortCheckpoint`'s truncated-tail
recovery — while a corrupt *manifest* (the index itself) raises
:class:`StoreIntegrityError`.

Integrity beyond hashes: each entry's state arrays are checked
shape-for-shape and dtype-for-dtype against a freshly built registry
model (the template), and the manifest records the static fast-path
verdict (:func:`repro.analysis.fastpath.registry_verdict`) so the
inference engine knows — without a wasted probe — whether the shard may
take the stacked batched path.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
import zipfile
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..autodiff import set_default_dtype
from ..models import ModelConfig, create_model
from ..models.registry import MODEL_REGISTRY

__all__ = ["CohortArtifact", "CohortShard", "ModelStore", "StoreError",
           "StoreIntegrityError", "StoreVersionError", "MANIFEST_FORMAT",
           "build_shards"]

#: Manifest schema version; bumped on incompatible layout changes.
MANIFEST_FORMAT = 1


class StoreError(RuntimeError):
    """Base class for model-store failures."""


class StoreIntegrityError(StoreError):
    """The store's index (a manifest) is unreadable or malformed."""


class StoreVersionError(StoreError):
    """The requested version does not exist or does not match the caller.

    Raised on unknown version ids and on config-digest skew: a caller
    that pins ``expected_config_digest`` refuses artifacts trained under
    different trainer/model settings, exactly like the checkpoint
    journal's digest-bearing cell keys refuse stale results.
    """


@dataclass
class CohortArtifact:
    """Everything needed to rebuild one individual's fitted forecaster."""

    identifier: str
    model_name: str
    seq_len: int
    num_variables: int
    #: Numpy dtype name the model was trained under (``float32``/``float64``).
    dtype: str
    #: ``Module.state_dict()`` arrays (parameters + flattened extra state).
    state: "dict[str, np.ndarray]"
    #: The individual's variable graph (``None`` for graph-free models).
    adjacency: np.ndarray | None = None
    #: Graph construction provenance.
    graph_method: str | None = None
    gdt: float | None = None
    seed: int | None = None
    #: Per-individual normalization stats of the *training* segment
    #: (provenance for callers feeding raw values; the engine does not
    #: re-normalize — served inputs must match ``predict``'s bit-for-bit).
    norm_mean: np.ndarray | None = None
    norm_std: np.ndarray | None = None
    #: The last ``seq_len`` observed rows — a ready-made forecast window
    #: for demos and smoke tests.
    window_tail: np.ndarray | None = None
    model_config: ModelConfig | None = None
    #: Digest of the cell-shaping config (see
    #: :func:`repro.training.personalized.cell_config_digest`).
    config_digest: str | None = None

    def shard_key(self) -> tuple:
        """Artifacts sharing this key live in (and load as) one shard."""
        return (self.model_name, int(self.seq_len), self.dtype,
                self.config_digest)


@dataclass
class CohortShard:
    """One loaded (model, seq_len, dtype, config) slice of a cohort."""

    model_name: str
    seq_len: int
    dtype: str
    config_digest: str | None
    model_config: ModelConfig | None
    version: str
    artifacts: "OrderedDict[str, CohortArtifact]" = field(repr=False,
                                                          default_factory=OrderedDict)
    #: Static fast-path verdict dict recorded at save time (may be None).
    verdict: dict | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.artifacts)

    def materialize(self, identifier: str):
        """Rebuild the individual's solo forecaster from its artifact.

        The returned model is bit-identical to the one that produced the
        stored state: same registry constructor, same adjacency, same
        dtype, with the trained arrays loaded over the (discarded) fresh
        initialization.
        """
        artifact = self.artifacts[identifier]
        set_default_dtype(artifact.dtype)
        model = create_model(artifact.model_name, artifact.num_variables,
                             artifact.seq_len, adjacency=artifact.adjacency,
                             config=artifact.model_config, seed=0)
        model.load_state_dict(artifact.state)
        model.eval()
        return model


# ----------------------------------------------------------------------
# Content addressing (graphcache hashing discipline, over many arrays)
# ----------------------------------------------------------------------

def _digest_arrays(arrays: "dict[str, np.ndarray]") -> str:
    """SHA-1 over the logical content of a named-array mapping.

    Mirrors :func:`repro.nn.graphcache._fingerprint` per array — shape,
    dtype and payload bytes — plus the (sorted) names, so the address is
    independent of container metadata and insertion order.
    """
    digest = hashlib.sha1()
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(repr((value.shape, value.dtype.str)).encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


_STATE_PREFIX = "state::"
_OPTIONAL_ARRAYS = ("adjacency", "norm_mean", "norm_std", "window_tail")


def _artifact_arrays(artifact: CohortArtifact) -> "dict[str, np.ndarray]":
    arrays = {f"{_STATE_PREFIX}{name}": np.asarray(value)
              for name, value in artifact.state.items()}
    for name in _OPTIONAL_ARRAYS:
        value = getattr(artifact, name)
        if value is not None:
            arrays[name] = np.asarray(value)
    return arrays


def _split_arrays(arrays: "dict[str, np.ndarray]"):
    state = OrderedDict(
        (name[len(_STATE_PREFIX):], arrays[name])
        for name in sorted(arrays) if name.startswith(_STATE_PREFIX))
    extras = {name: arrays.get(name) for name in _OPTIONAL_ARRAYS}
    return state, extras


# ----------------------------------------------------------------------
# Template integrity check
# ----------------------------------------------------------------------

_TEMPLATE_SPECS: "OrderedDict[tuple, dict]" = OrderedDict()
_TEMPLATE_MAX = 64


def _template_spec(artifact: CohortArtifact) -> "dict[str, tuple]":
    """``state key -> (shape, dtype str)`` of a freshly built registry model."""
    key = (artifact.model_name, artifact.num_variables, artifact.seq_len,
           artifact.dtype, repr(artifact.model_config))
    spec = _TEMPLATE_SPECS.get(key)
    if spec is not None:
        _TEMPLATE_SPECS.move_to_end(key)
        return spec
    set_default_dtype(artifact.dtype)
    template = create_model(artifact.model_name, artifact.num_variables,
                            artifact.seq_len, adjacency=artifact.adjacency,
                            config=artifact.model_config, seed=0)
    spec = {name: (value.shape, value.dtype.str)
            for name, value in template.state_dict().items()}
    _TEMPLATE_SPECS[key] = spec
    if len(_TEMPLATE_SPECS) > _TEMPLATE_MAX:
        _TEMPLATE_SPECS.popitem(last=False)
    return spec


def _check_against_template(artifact: CohortArtifact) -> str | None:
    """Shape/dtype audit of stored state against the registry model.

    Returns a human-readable problem description, or ``None`` when the
    state is loadable as-is.
    """
    if artifact.model_name not in MODEL_REGISTRY:
        return f"unknown registry model {artifact.model_name!r}"
    try:
        spec = _template_spec(artifact)
    except Exception as error:  # noqa: BLE001 - report, never crash the load
        return (f"could not build the registry template "
                f"({type(error).__name__}: {error})")
    missing = sorted(set(spec) - set(artifact.state))
    unexpected = sorted(set(artifact.state) - set(spec))
    if missing or unexpected:
        return (f"state keys diverge from the registry model: "
                f"missing={missing}, unexpected={unexpected}")
    for name, (shape, dtype_str) in spec.items():
        value = np.asarray(artifact.state[name])
        if tuple(value.shape) != tuple(shape):
            return (f"state {name!r} has shape {tuple(value.shape)}, "
                    f"registry model expects {tuple(shape)}")
        if value.dtype.str != dtype_str:
            return (f"state {name!r} has dtype {value.dtype.str}, "
                    f"registry model expects {dtype_str}")
    return None


def _fastpath_verdict(model_name: str) -> dict | None:
    """The static fast-path verdict for one model (None if unavailable)."""
    try:
        from ..analysis.fastpath import registry_verdict

        return registry_verdict(model_name, None).to_dict()
    except Exception:  # noqa: BLE001 - analysis must never block the store
        return None


def build_shards(artifacts, version: str = "unsaved") -> "list[CohortShard]":
    """Group in-memory artifacts into shards without touching disk.

    The facade's ``fit_cohort`` path: a freshly fitted cohort is served
    straight from memory through the same :class:`CohortShard` shape the
    store loads, so the engine cannot tell (and need not care) whether a
    cohort was persisted first.
    """
    shards: "OrderedDict[tuple, CohortShard]" = OrderedDict()
    for artifact in artifacts:
        key = artifact.shard_key()
        shard = shards.get(key)
        if shard is None:
            shard = CohortShard(
                model_name=artifact.model_name,
                seq_len=artifact.seq_len,
                dtype=artifact.dtype,
                config_digest=artifact.config_digest,
                model_config=artifact.model_config,
                version=version,
                verdict=_fastpath_verdict(artifact.model_name),
            )
            shards[key] = shard
        shard.artifacts[artifact.identifier] = artifact
    return list(shards.values())


class ModelStore:
    """Versioned, content-addressed store of fitted cohort artifacts."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.versions_dir = self.root / "versions"

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def _write_object(self, arrays: "dict[str, np.ndarray]") -> str:
        object_hash = _digest_arrays(arrays)
        path = self.objects_dir / f"{object_hash}.npz"
        if path.exists():
            return object_hash  # content-addressed: identical payload
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return object_hash

    def save_cohort(self, artifacts, *, version: str | None = None,
                    metadata: dict | None = None) -> str:
        """Persist artifacts as one immutable version; returns its id.

        The default version id is content-derived — the SHA-1 (12 hex
        chars) over every entry's (identifier, object hash, config
        digest) — so re-saving an identical cohort reuses both the
        objects *and* the version, while any drift mints a new id.
        """
        artifacts = list(artifacts)
        if not artifacts:
            raise ValueError("save_cohort needs at least one artifact")
        entries = []
        verdicts: dict = {}
        for artifact in artifacts:
            arrays = _artifact_arrays(artifact)
            object_hash = self._write_object(arrays)
            if artifact.model_name not in verdicts:
                verdicts[artifact.model_name] = _fastpath_verdict(
                    artifact.model_name)
            entries.append({
                "identifier": artifact.identifier,
                "model": artifact.model_name,
                "seq_len": int(artifact.seq_len),
                "num_variables": int(artifact.num_variables),
                "dtype": artifact.dtype,
                "graph_method": artifact.graph_method,
                "gdt": artifact.gdt,
                "seed": artifact.seed,
                "config_digest": artifact.config_digest,
                "model_config": None if artifact.model_config is None
                else asdict(artifact.model_config),
                "object": object_hash,
                "params": {name: {"shape": list(np.asarray(value).shape),
                                  "dtype": np.asarray(value).dtype.str}
                           for name, value in artifact.state.items()},
            })
        if version is None:
            digest = hashlib.sha1(repr(sorted(
                (e["identifier"], e["object"], e["config_digest"], e["model"])
                for e in entries)).encode())
            version = digest.hexdigest()[:12]
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": version,
            "created": time.time(),
            "metadata": dict(metadata or {}),
            "verdicts": verdicts,
            "entries": entries,
        }
        self.versions_dir.mkdir(parents=True, exist_ok=True)
        path = self.versions_dir / f"{version}.json"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(tmp, path)
        return version

    # ------------------------------------------------------------------
    # Version bookkeeping
    # ------------------------------------------------------------------
    def versions(self) -> "list[str]":
        """Known version ids, oldest first (by manifest creation time)."""
        stamped = []
        for path in sorted(self.versions_dir.glob("*.json")):
            try:
                manifest = json.loads(path.read_text())
                stamped.append((float(manifest.get("created", 0.0)),
                                path.stem))
            except (OSError, ValueError):
                # An unreadable manifest still *names* a version; surface
                # it (loading it will raise with the real diagnosis).
                stamped.append((0.0, path.stem))
        stamped.sort()
        return [version for _, version in stamped]

    def latest_version(self) -> str:
        versions = self.versions()
        if not versions:
            raise StoreVersionError(f"store {self.root} has no versions")
        return versions[-1]

    def manifest(self, version: str | None = None) -> dict:
        """Load and validate one version's manifest."""
        version = version if version is not None else self.latest_version()
        path = self.versions_dir / f"{version}.json"
        if not path.exists():
            known = ", ".join(self.versions()) or "<none>"
            raise StoreVersionError(
                f"unknown version {version!r} in store {self.root} "
                f"(known: {known})")
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise StoreIntegrityError(
                f"manifest {path} is unreadable "
                f"({type(error).__name__}: {error})") from error
        if not isinstance(manifest, dict) \
                or not isinstance(manifest.get("entries"), list):
            raise StoreIntegrityError(
                f"manifest {path} is malformed: expected an object with "
                f"an 'entries' list")
        if manifest.get("format") != MANIFEST_FORMAT:
            raise StoreIntegrityError(
                f"manifest {path} has format {manifest.get('format')!r}; "
                f"this build reads format {MANIFEST_FORMAT}")
        return manifest

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _load_entry(self, entry: dict, strict: bool) -> CohortArtifact | None:
        """Load + verify one manifest entry; ``None`` when degraded."""

        def degrade(problem: str) -> None:
            message = (f"store entry {entry.get('identifier')!r} "
                       f"({entry.get('model')}) in {self.root}: {problem}; "
                       f"skipping this individual — the rest of the shard "
                       f"still loads")
            if strict:
                raise StoreIntegrityError(message)
            warnings.warn(message, RuntimeWarning, stacklevel=4)

        required = ("identifier", "model", "seq_len", "num_variables",
                    "dtype", "object")
        missing_fields = [name for name in required if name not in entry]
        if missing_fields:
            degrade(f"manifest entry lacks field(s) {missing_fields}")
            return None
        path = self.objects_dir / f"{entry['object']}.npz"
        if not path.exists():
            degrade(f"object {entry['object']} is missing on disk")
            return None
        try:
            with np.load(path) as payload:
                arrays = {name: payload[name] for name in payload.files}
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile) as error:
            degrade(f"object {entry['object']} is corrupt "
                    f"({type(error).__name__}: {error})")
            return None
        actual = _digest_arrays(arrays)
        if actual != entry["object"]:
            degrade(f"object content hash {actual} does not match its "
                    f"address {entry['object']} (bit rot or tampering)")
            return None
        state, extras = _split_arrays(arrays)
        model_config = None
        if entry.get("model_config") is not None:
            try:
                model_config = ModelConfig(**entry["model_config"])
            except (TypeError, ValueError) as error:
                degrade(f"model_config does not round-trip "
                        f"({type(error).__name__}: {error})")
                return None
        artifact = CohortArtifact(
            identifier=entry["identifier"],
            model_name=entry["model"],
            seq_len=int(entry["seq_len"]),
            num_variables=int(entry["num_variables"]),
            dtype=entry["dtype"],
            state=state,
            adjacency=extras["adjacency"],
            graph_method=entry.get("graph_method"),
            gdt=entry.get("gdt"),
            seed=entry.get("seed"),
            norm_mean=extras["norm_mean"],
            norm_std=extras["norm_std"],
            window_tail=extras["window_tail"],
            model_config=model_config,
            config_digest=entry.get("config_digest"),
        )
        problem = _check_against_template(artifact)
        if problem is not None:
            degrade(problem)
            return None
        return artifact

    def load_cohort(self, version: str | None = None, *,
                    strict: bool = False,
                    expected_config_digest: str | None = None
                    ) -> "list[CohortShard]":
        """Load every shard of one version.

        Corrupt or template-incompatible entries degrade with a
        ``RuntimeWarning`` (``strict=True`` raises instead); a corrupt
        manifest always raises :class:`StoreIntegrityError`; and when
        ``expected_config_digest`` is given, any surviving entry trained
        under a different config digest raises :class:`StoreVersionError`
        (version skew) rather than serving stale weights.
        """
        manifest = self.manifest(version)
        resolved = manifest.get("version", version)
        verdicts = manifest.get("verdicts", {})
        shards: "OrderedDict[tuple, CohortShard]" = OrderedDict()
        loaded = 0
        for entry in manifest["entries"]:
            artifact = self._load_entry(entry, strict)
            if artifact is None:
                continue
            if expected_config_digest is not None \
                    and artifact.config_digest != expected_config_digest:
                raise StoreVersionError(
                    f"version skew: entry {artifact.identifier!r} was "
                    f"trained under config digest "
                    f"{artifact.config_digest!r}, caller expects "
                    f"{expected_config_digest!r} — refusing to serve "
                    f"mismatched weights")
            loaded += 1
            key = artifact.shard_key()
            shard = shards.get(key)
            if shard is None:
                shard = CohortShard(
                    model_name=artifact.model_name,
                    seq_len=artifact.seq_len,
                    dtype=artifact.dtype,
                    config_digest=artifact.config_digest,
                    model_config=artifact.model_config,
                    version=str(resolved),
                    verdict=verdicts.get(artifact.model_name),
                )
                shards[key] = shard
            shard.artifacts[artifact.identifier] = artifact
        if not loaded:
            raise StoreIntegrityError(
                f"version {resolved!r} in store {self.root} has no "
                f"loadable entries (all degraded)")
        return list(shards.values())

    def load_shard(self, version: str | None = None, *,
                   model_name: str | None = None,
                   seq_len: int | None = None,
                   dtype: str | None = None,
                   strict: bool = False,
                   expected_config_digest: str | None = None) -> CohortShard:
        """Load exactly one shard, selected by model/seq_len/dtype."""
        shards = self.load_cohort(version, strict=strict,
                                  expected_config_digest=expected_config_digest)
        matches = [s for s in shards
                   if (model_name is None or s.model_name == model_name)
                   and (seq_len is None or s.seq_len == seq_len)
                   and (dtype is None or s.dtype == dtype)]
        if not matches:
            available = ", ".join(
                f"({s.model_name}, seq{s.seq_len}, {s.dtype})"
                for s in shards)
            raise StoreVersionError(
                f"no shard matches (model={model_name}, seq_len={seq_len}, "
                f"dtype={dtype}); available: {available}")
        if len(matches) > 1:
            available = ", ".join(
                f"({s.model_name}, seq{s.seq_len}, {s.dtype})"
                for s in matches)
            raise StoreVersionError(
                f"ambiguous shard selection — narrow it down: {available}")
        return matches[0]
