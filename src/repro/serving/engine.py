"""Batched forecast inference over loaded cohort shards.

Serving a cohort means answering many small questions — "given this
individual's last ``seq_len`` observations, what comes next?" — against
many small per-individual models.  Running them one by one wastes the
very structure PR 6 exploited for training: individuals under the same
(model, seq_len, dtype, config) shard share every shape, so their
forward passes stack into one ``(K, S, L, V)`` tensor driven by one
``(K, V, V)`` propagation operand.

The engine therefore mirrors :mod:`repro.training.stacked`, forward-only:

* requests are micro-batched (a queue with a max batch size and a max
  linger, like any serving stack's batching window),
* a flush groups pending requests by shard — the same grouping key the
  stacked trainer uses for lanes — and replays the PR-6 lane forwards
  (``_forward_lstm`` / ``_forward_tgcn`` / ``_forward_a3tgcn``) under
  ``no_grad`` with dropout disabled, which makes every batched forecast
  **bitwise identical** to the individual's solo ``predict``,
* models outside the stackable set (or shards whose stored fast-path
  verdict says no) take the eager per-request path, and a batched
  forward that throws falls back to per-request eager execution so one
  poisoned request cannot take down its batch,
* failures are per-request structured records in the PR-5
  :class:`~repro.training.faults.CellFailure` vocabulary — a timed-out
  or exploding request yields a :class:`RequestFailure`, never an
  exception that kills unrelated requests.
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..autodiff import get_default_dtype, no_grad, set_default_dtype
from ..autodiff.tensor import Tensor
from ..nn.graphcache import cached_stacked_adjacency
from ..training.faults import describe_exception
from ..training.stacked import (STACKED_MODELS, _forward_a3tgcn,
                                _forward_lstm, _forward_tgcn)
from .store import CohortArtifact, CohortShard

__all__ = ["ForecastRequest", "ForecastResponse", "RequestFailure",
           "InferenceEngine", "REQUEST_FAILURE_KINDS"]

#: Subset of :data:`repro.training.faults.FAILURE_KINDS` a forecast
#: request can die with (no retries, no pools at serve time).
REQUEST_FAILURE_KINDS = ("exception", "timeout")


@dataclass
class ForecastRequest:
    """One pending forecast: an individual plus an input window."""

    request_id: str
    identifier: str
    model_name: str
    #: ``(seq_len, num_variables)`` input window, already validated and
    #: cast to the shard dtype at submit time.
    window: np.ndarray = field(repr=False)
    #: Absolute ``time.monotonic()`` deadline, or ``None`` for no limit.
    deadline: float | None = None
    #: Monotonic submit timestamp (set by the engine).
    submitted: float = 0.0
    #: Submission sequence number — outcomes are returned in this order.
    seq: int = 0


@dataclass
class ForecastResponse:
    """A served forecast."""

    request_id: str
    identifier: str
    model_name: str
    prediction: np.ndarray = field(repr=False)
    #: True when served by the stacked batched path.
    batched: bool = False
    elapsed: float = 0.0


@dataclass
class RequestFailure:
    """Structured per-request failure (CellFailure vocabulary).

    Occupies the request's slot in the outcome stream, so callers keep
    request/outcome alignment without try/except around every submit.
    """

    request_id: str
    identifier: str
    #: One of :data:`REQUEST_FAILURE_KINDS`.
    kind: str
    error_type: str
    message: str
    elapsed: float = 0.0

    def __str__(self) -> str:
        return (f"request {self.request_id} ({self.identifier}): "
                f"{self.kind} — {self.error_type}: {self.message}")


_MAX_STACK_CACHE = 32


class InferenceEngine:
    """Micro-batching forecast engine over one or more cohort shards.

    ``submit`` enqueues; a flush happens when the queue reaches
    ``max_batch_size``, when ``poll`` sees the oldest request has
    lingered past ``max_linger`` seconds, or when ``flush`` is called.
    ``forecast`` is the synchronous convenience: one request, processed
    immediately, answer or raise.
    """

    def __init__(self, shards, *, max_batch_size: int = 32,
                 max_linger: float = 0.05, use_stacked: bool = True):
        if isinstance(shards, CohortShard):
            shards = [shards]
        self.shards: "list[CohortShard]" = list(shards)
        if not self.shards:
            raise ValueError("InferenceEngine needs at least one shard")
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got "
                             f"{max_batch_size}")
        if max_linger < 0:
            raise ValueError(f"max_linger must be >= 0, got {max_linger}")
        self.max_batch_size = int(max_batch_size)
        self.max_linger = float(max_linger)
        self.use_stacked = bool(use_stacked)
        # Routing: (identifier, model) -> (shard, artifact), plus the set
        # of models per identifier so model_name=None resolves when
        # unambiguous.
        self._routes: "dict[tuple[str, str], tuple[CohortShard, CohortArtifact]]" = {}
        self._models_of: "dict[str, list[str]]" = {}
        for shard in self.shards:
            for identifier, artifact in shard.artifacts.items():
                key = (identifier, shard.model_name)
                if key in self._routes:
                    raise ValueError(
                        f"duplicate route {key}: two shards serve the same "
                        f"(individual, model) pair")
                self._routes[key] = (shard, artifact)
                self._models_of.setdefault(identifier, []).append(
                    shard.model_name)
        self._pending: "list[ForecastRequest]" = []
        self._solo_cache: "dict[tuple[str, str], object]" = {}
        self._stack_cache: "OrderedDict[tuple, OrderedDict]" = OrderedDict()
        self._sparse_verdicts: "dict[tuple, bool]" = {}
        self._seq = itertools.count()
        self.stats = {"submitted": 0, "served": 0, "batched": 0,
                      "eager": 0, "failed": 0, "flushes": 0}

    # ------------------------------------------------------------------
    # Routing + validation
    # ------------------------------------------------------------------
    @property
    def individuals(self) -> "list[str]":
        return sorted(self._models_of)

    def _resolve(self, identifier: str, model_name: str | None):
        models = self._models_of.get(identifier)
        if not models:
            raise KeyError(f"unknown individual {identifier!r}; this engine "
                           f"serves {len(self._models_of)} individuals")
        if model_name is None:
            if len(models) > 1:
                raise KeyError(f"individual {identifier!r} is served by "
                               f"multiple models {sorted(models)}; pass "
                               f"model_name")
            model_name = models[0]
        route = self._routes.get((identifier, model_name))
        if route is None:
            raise KeyError(f"individual {identifier!r} has no "
                           f"{model_name!r} artifact (has: {sorted(models)})")
        return model_name, route

    def _validated_window(self, window, shard: CohortShard,
                          artifact: CohortArtifact) -> np.ndarray:
        if window is None:
            window = artifact.window_tail
            if window is None:
                raise ValueError(
                    f"no window given and artifact {artifact.identifier!r} "
                    f"stores no window_tail")
        window = np.asarray(window, dtype=np.dtype(shard.dtype))
        expected = (shard.seq_len, artifact.num_variables)
        if window.shape != expected:
            raise ValueError(
                f"window for {artifact.identifier!r} has shape "
                f"{window.shape}; the {shard.model_name} shard expects "
                f"{expected} (seq_len, num_variables)")
        return window

    # ------------------------------------------------------------------
    # Queue API
    # ------------------------------------------------------------------
    def submit(self, identifier: str, window=None, *,
               model_name: str | None = None, timeout: float | None = None,
               request_id: str | None = None) -> "list":
        """Enqueue one request; returns outcomes if this triggered a flush.

        Routing/validation problems surface immediately as a returned
        :class:`RequestFailure` (never enqueued); otherwise the request
        waits for a full batch, a linger expiry (:meth:`poll`) or an
        explicit :meth:`flush`.
        """
        now = time.monotonic()
        seq = next(self._seq)
        self.stats["submitted"] += 1
        if request_id is None:
            request_id = f"req-{seq}"
        try:
            model_name, (shard, artifact) = self._resolve(identifier,
                                                          model_name)
            window = self._validated_window(window, shard, artifact)
        except (KeyError, ValueError, TypeError) as error:
            error_type, message, _ = describe_exception(error)
            self.stats["failed"] += 1
            return [RequestFailure(request_id=request_id,
                                   identifier=identifier, kind="exception",
                                   error_type=error_type, message=message)]
        deadline = None if timeout is None else now + float(timeout)
        self._pending.append(ForecastRequest(
            request_id=request_id, identifier=identifier,
            model_name=model_name, window=window, deadline=deadline,
            submitted=now, seq=seq))
        if len(self._pending) >= self.max_batch_size:
            return self.flush()
        return []

    def poll(self) -> "list":
        """Flush iff the oldest pending request has out-lingered the window."""
        if not self._pending:
            return []
        waited = time.monotonic() - self._pending[0].submitted
        if waited >= self.max_linger:
            return self.flush()
        return []

    def flush(self) -> "list":
        """Process every pending request; outcomes in submission order."""
        batch, self._pending = self._pending, []
        if not batch:
            return []
        self.stats["flushes"] += 1
        outcomes = self._process(batch)
        outcomes.sort(key=lambda outcome: getattr(outcome, "_seq", 0))
        for outcome in outcomes:
            if isinstance(outcome, RequestFailure):
                self.stats["failed"] += 1
            else:
                self.stats["served"] += 1
        return outcomes

    def forecast(self, identifier: str, window=None, *,
                 model_name: str | None = None) -> np.ndarray:
        """Synchronous single forecast; raises on failure.

        Bypasses the queue (pending requests are untouched) and serves
        through the eager path — the same solo ``predict`` the batched
        path is bit-identical to.
        """
        model_name, (shard, artifact) = self._resolve(identifier, model_name)
        window = self._validated_window(window, shard, artifact)
        request = ForecastRequest(request_id="sync", identifier=identifier,
                                  model_name=model_name, window=window,
                                  submitted=time.monotonic())
        previous = get_default_dtype()
        try:
            set_default_dtype(shard.dtype)
            outcome = self._run_eager(shard, artifact, request)
        finally:
            set_default_dtype(previous)
        if isinstance(outcome, RequestFailure):
            raise RuntimeError(str(outcome))
        return outcome.prediction

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _process(self, batch: "list[ForecastRequest]") -> "list":
        now = time.monotonic()
        outcomes: "list" = []
        groups: "OrderedDict[int, list[ForecastRequest]]" = OrderedDict()
        shard_by_id: "dict[int, CohortShard]" = {}
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                # Past deadline: never run — a response the caller has
                # already given up on is wasted compute for the batch.
                failure = RequestFailure(
                    request_id=request.request_id,
                    identifier=request.identifier, kind="timeout",
                    error_type="DeadlineExceeded",
                    message=(f"deadline passed "
                             f"{now - request.deadline:.3f}s before "
                             f"execution"),
                    elapsed=now - request.submitted)
                failure._seq = request.seq
                outcomes.append(failure)
                continue
            shard, _ = self._routes[(request.identifier, request.model_name)]
            groups.setdefault(id(shard), []).append(request)
            shard_by_id[id(shard)] = shard
        for shard_id, requests in groups.items():
            shard = shard_by_id[shard_id]
            previous = get_default_dtype()
            try:
                set_default_dtype(shard.dtype)
                results = self._run_group(shard, requests)
            finally:
                set_default_dtype(previous)
            for request, outcome in zip(requests, results):
                outcome._seq = request.seq
                outcomes.append(outcome)
        return outcomes

    def _stackable(self, shard: CohortShard) -> bool:
        if shard.model_name not in STACKED_MODELS:
            return False
        # Stored static verdict gates the batched path; absent verdicts
        # (old manifests) default to eligible — the fallback still
        # guards execution.
        if shard.verdict is not None and not shard.verdict.get("stackable",
                                                               True):
            return False
        if shard.model_name != "lstm" and self._sparse_routed(shard):
            return False
        return True

    def _sparse_routed(self, shard: CohortShard) -> bool:
        """Whether any of the shard's graphs routes through the CSR path.

        The batched lane forward is dense-only, while a solo model routes
        per the sparse autoswitch; mixing the two would break the
        solo == batched bitwise contract, so such shards serve eagerly.
        Memoized per (shard, mode): the verdict depends only on the
        stored graphs and the process-wide sparse mode.
        """
        from ..nn.sparse import get_sparse_mode, should_use_sparse

        mode = get_sparse_mode()
        if mode == "never":
            return False
        key = (shard.version, shard.model_name, shard.dtype, mode)
        cached = self._sparse_verdicts.get(key)
        if cached is None:
            cached = False
            for artifact in shard.artifacts.values():
                if artifact.adjacency is None:
                    continue
                graph = np.asarray(artifact.adjacency)
                v = graph.shape[0]
                nnz = np.count_nonzero((graph != 0) | np.eye(v, dtype=bool))
                if should_use_sparse(v, nnz / (v * v), shard.dtype, mode):
                    cached = True
                    break
            self._sparse_verdicts[key] = cached
        return cached

    def _run_group(self, shard: CohortShard,
                   requests: "list[ForecastRequest]") -> "list":
        if self.use_stacked and len(requests) > 1 and self._stackable(shard):
            try:
                return self._run_stacked(shard, requests)
            except Exception:  # noqa: BLE001 - isolate: retry eagerly
                # The batched forward died as a whole; rerun each request
                # alone so one poisoned input cannot sink its batchmates.
                pass
        return [self._run_eager(shard, shard.artifacts[r.identifier], r)
                for r in requests]

    def _solo_model(self, shard: CohortShard, identifier: str):
        key = (shard.version, shard.model_name, shard.dtype, identifier,
               shard.config_digest)
        model = self._solo_cache.get(key)
        if model is None:
            model = shard.materialize(identifier)
            self._solo_cache[key] = model
        return model

    def _run_eager(self, shard: CohortShard, artifact: CohortArtifact,
                   request: ForecastRequest):
        start = time.monotonic()
        try:
            model = self._solo_model(shard, request.identifier)
            prediction = model.predict(request.window[None])[0]
            self.stats["eager"] += 1
            return ForecastResponse(
                request_id=request.request_id, identifier=request.identifier,
                model_name=request.model_name, prediction=prediction,
                batched=False, elapsed=time.monotonic() - start)
        except Exception as error:  # noqa: BLE001 - per-request isolation
            error_type, message, _ = describe_exception(error)
            return RequestFailure(
                request_id=request.request_id, identifier=request.identifier,
                kind="exception", error_type=error_type, message=message,
                elapsed=time.monotonic() - start)

    def _stacked_params(self, shard: CohortShard,
                        identifiers: "tuple[str, ...]") -> OrderedDict:
        key = (shard.version, shard.model_name, shard.dtype,
               shard.config_digest, identifiers)
        cached = self._stack_cache.get(key)
        if cached is not None:
            self._stack_cache.move_to_end(key)
            return cached
        models = [self._solo_model(shard, identifier)
                  for identifier in identifiers]
        per_model = [dict(model.named_parameters()) for model in models]
        names = [name for name, _ in models[0].named_parameters()]
        # Plain Tensors, not Parameters: Parameter casts to the default
        # dtype on construction, and the stack must keep the stored
        # arrays bit-for-bit.  (The default dtype is the shard dtype
        # here anyway, but the engine should not depend on that.)
        params = OrderedDict(
            (name, Tensor(np.stack([pm[name].data for pm in per_model])))
            for name in names)
        self._stack_cache[key] = params
        if len(self._stack_cache) > _MAX_STACK_CACHE:
            self._stack_cache.popitem(last=False)
        return params

    def _run_stacked(self, shard: CohortShard,
                     requests: "list[ForecastRequest]") -> "list":
        start = time.monotonic()
        identifiers = tuple(request.identifier for request in requests)
        artifacts = [shard.artifacts[identifier]
                     for identifier in identifiers]
        models = [self._solo_model(shard, identifier)
                  for identifier in identifiers]
        params = self._stacked_params(shard, identifiers)
        # (K, 1, L, V): each request is one sample in its lane.
        inputs = np.stack([request.window[None] for request in requests])
        hidden_size = models[0].hidden_size
        with no_grad():
            if shard.model_name == "a3tgcn":
                propagation = cached_stacked_adjacency(
                    [artifact.adjacency for artifact in artifacts])
                out = _forward_a3tgcn(params, propagation, inputs,
                                      hidden_size, shard.seq_len, None)
            elif shard.model_name == "tgcn":
                propagation = cached_stacked_adjacency(
                    [artifact.adjacency for artifact in artifacts])
                out = _forward_tgcn(params, propagation, inputs,
                                    hidden_size, shard.seq_len, None)
            else:
                out = _forward_lstm(params, inputs, hidden_size,
                                    shard.seq_len,
                                    models[0].lstm.num_layers, None)
        data = out.data  # (K, 1, V)
        elapsed = time.monotonic() - start
        self.stats["batched"] += len(requests)
        return [ForecastResponse(
            request_id=request.request_id, identifier=request.identifier,
            model_name=request.model_name,
            prediction=np.ascontiguousarray(data[k, 0]), batched=True,
            elapsed=elapsed)
            for k, request in enumerate(requests)]
