"""Forecast serving: versioned model store + batched inference engine.

Three layers (see DESIGN.md "Forecast serving"):

* :mod:`repro.serving.store` — content-addressed, versioned on-disk
  persistence of fitted per-individual artifacts (weights, graphs,
  provenance, normalization stats).
* :mod:`repro.serving.engine` — micro-batching inference engine that
  replays the PR-6 stacked lane forwards forward-only, bit-identical to
  each individual's solo ``predict``.
* :mod:`repro.serving.service` — JSONL request/response front end used
  by ``ema-gnn serve``.

Most callers should not import this package directly: the stable facade
is :mod:`repro.api` (``fit_cohort`` / ``CohortHandle`` / ``load``).
"""

from .engine import (REQUEST_FAILURE_KINDS, ForecastRequest,
                     ForecastResponse, InferenceEngine, RequestFailure)
from .service import ForecastService, outcome_to_dict
from .store import (MANIFEST_FORMAT, CohortArtifact, CohortShard, ModelStore,
                    StoreError, StoreIntegrityError, StoreVersionError,
                    build_shards)

__all__ = ["ModelStore", "CohortArtifact", "CohortShard", "StoreError",
           "StoreIntegrityError", "StoreVersionError", "MANIFEST_FORMAT",
           "build_shards",
           "InferenceEngine", "ForecastRequest", "ForecastResponse",
           "RequestFailure", "REQUEST_FAILURE_KINDS",
           "ForecastService", "outcome_to_dict"]
