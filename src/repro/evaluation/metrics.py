"""Evaluation metrics (paper section V-E).

The headline number is the MSE of equation (1): squared error summed over
individuals, time points and variables, divided by ``N * T * V``.  Because
individuals contribute different ``T_i``, the paper reports the *average of
per-individual MSEs* with its standard deviation ("0.840(0.431)"), which is
what :func:`cohort_score` computes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["mse_score", "CohortScore", "cohort_score", "percentage_change"]


def _require_finite(name: str, values: np.ndarray) -> None:
    bad = ~np.isfinite(values)
    if bad.any():
        first = tuple(int(i) for i in np.argwhere(bad)[0])
        raise ValueError(
            f"{name} contains {int(bad.sum())} non-finite value(s) "
            f"(first at index {first}); a NaN here "
            f"would silently poison the MSE — fix the upstream "
            f"prediction/divergence instead")


def mse_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Per-individual MSE over all (time, variable) cells.

    Raises :class:`ValueError` when either array contains NaN/inf — a
    diverged model must be surfaced, not averaged into a table as NaN.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("cannot score empty arrays")
    _require_finite("y_true", y_true)
    _require_finite("y_pred", y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


@dataclass(frozen=True)
class CohortScore:
    """Mean(std) of per-individual MSEs — one cell of the paper's tables.

    ``n_failed`` counts individuals whose cell failed for good under the
    fault-tolerant scheduler; they are excluded from ``mean``/``std``
    but reported alongside so a degraded aggregate is never mistaken for
    a complete one.
    """

    mean: float
    std: float
    per_individual: tuple[float, ...]
    n_failed: int = 0

    @property
    def count(self) -> int:
        return len(self.per_individual)

    def __str__(self) -> str:
        text = f"{self.mean:.3f}({self.std:.3f})"
        if self.n_failed:
            text += f" [{self.n_failed} failed]"
        return text


def cohort_score(per_individual_mses, n_failed: int = 0) -> CohortScore:
    """Aggregate per-individual MSEs the way the paper's tables do.

    ``n_failed`` individuals contributed no score (their cells failed);
    the aggregate degrades gracefully to the survivors, down to an
    all-NaN cell when nobody survived.
    """
    values = tuple(float(v) for v in per_individual_mses)
    if not values:
        if n_failed:
            return CohortScore(mean=float("nan"), std=float("nan"),
                               per_individual=(), n_failed=n_failed)
        raise ValueError("need at least one individual score")
    return CohortScore(mean=float(np.mean(values)),
                       std=float(np.std(values)),
                       per_individual=values, n_failed=n_failed)


def percentage_change(before, after) -> float:
    """Mean per-individual relative % change (Fig. 3's red annotations).

    Negative = improvement (lower MSE after).  Computed per individual and
    then averaged, exactly like the paper ("for each individual, the
    relative percentage of increase or decrease is calculated").
    """
    before = np.asarray(list(before), dtype=np.float64)
    after = np.asarray(list(after), dtype=np.float64)
    if before.shape != after.shape or before.size == 0:
        raise ValueError("before/after must be equal-length, non-empty")
    if (before <= 0).any():
        raise ValueError("baseline MSEs must be positive")
    return float(np.mean((after - before) / before) * 100.0)
