"""Per-variable error analysis (paper section VII-C, future work).

"the effects across the MSE scores when predicting each of the variables
should be further investigated" — this module computes per-variable MSE
decompositions per individual and aggregates them across a cohort, so the
question the paper leaves open is answerable with one call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VariableScore", "per_variable_mse", "aggregate_variable_scores"]


@dataclass(frozen=True)
class VariableScore:
    """Cohort-level error summary of one EMA variable."""

    name: str
    mean: float
    std: float
    worst_individual: str
    best_individual: str


def per_variable_mse(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """MSE of each variable (column) for one individual."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape or y_true.ndim != 2:
        raise ValueError(
            f"need matching (T, V) arrays, got {y_true.shape} vs {y_pred.shape}")
    if y_true.shape[0] == 0:
        raise ValueError("cannot score empty arrays")
    return ((y_true - y_pred) ** 2).mean(axis=0)


def aggregate_variable_scores(per_individual: dict[str, np.ndarray],
                              variable_names) -> list[VariableScore]:
    """Aggregate per-variable MSE vectors (keyed by individual) cohort-wide.

    Returns one :class:`VariableScore` per variable, sorted hardest-first —
    the ranking the paper's future-work question asks for.
    """
    variable_names = list(variable_names)
    if not per_individual:
        raise ValueError("need at least one individual")
    ids = sorted(per_individual)
    matrix = np.stack([np.asarray(per_individual[i], dtype=np.float64)
                       for i in ids])  # (N, V)
    if matrix.shape[1] != len(variable_names):
        raise ValueError(f"{matrix.shape[1]} scores but "
                         f"{len(variable_names)} variable names")
    scores = []
    for j, name in enumerate(variable_names):
        column = matrix[:, j]
        scores.append(VariableScore(
            name=name,
            mean=float(column.mean()),
            std=float(column.std()),
            worst_individual=ids[int(column.argmax())],
            best_individual=ids[int(column.argmin())],
        ))
    return sorted(scores, key=lambda s: -s.mean)
