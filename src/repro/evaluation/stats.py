"""Paired significance tests for cohort comparisons.

The paper's discussion repeatedly qualifies its deltas ("the differences
were not significant", §VII-C) without printing the tests.  Because every
condition here is evaluated on the *same* individuals, the natural tests
are paired: Wilcoxon signed-rank (distribution-free, the standard choice
for per-individual MSEs) and the paired t-test, both via scipy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["PairedComparison", "compare_conditions"]


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of comparing two conditions on the same individuals."""

    mean_a: float
    mean_b: float
    mean_difference: float        # a - b; negative = condition a is better
    wilcoxon_statistic: float
    wilcoxon_p: float
    ttest_statistic: float
    ttest_p: float
    n: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Wilcoxon verdict at the given level."""
        return self.wilcoxon_p < alpha

    def __str__(self) -> str:
        verdict = "significant" if self.significant() else "not significant"
        return (f"Δ={self.mean_difference:+.3f} "
                f"(Wilcoxon p={self.wilcoxon_p:.3f}, t-test p={self.ttest_p:.3f}; "
                f"{verdict} at α=0.05, n={self.n})")


def compare_conditions(scores_a, scores_b) -> PairedComparison:
    """Paired comparison of two conditions' per-individual MSEs.

    ``scores_a`` / ``scores_b`` are equal-length sequences aligned by
    individual (the i-th entries belong to the same person).
    """
    a = np.asarray(list(scores_a), dtype=np.float64)
    b = np.asarray(list(scores_b), dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1 or a.size < 2:
        raise ValueError("need two aligned 1-D score vectors with n >= 2")
    differences = a - b
    if np.allclose(differences, 0.0):
        wilcoxon_stat, wilcoxon_p = 0.0, 1.0
    else:
        wilcoxon_stat, wilcoxon_p = scipy_stats.wilcoxon(a, b)
    ttest_stat, ttest_p = scipy_stats.ttest_rel(a, b)
    return PairedComparison(
        mean_a=float(a.mean()), mean_b=float(b.mean()),
        mean_difference=float(differences.mean()),
        wilcoxon_statistic=float(wilcoxon_stat), wilcoxon_p=float(wilcoxon_p),
        ttest_statistic=float(ttest_stat), ttest_p=float(ttest_p),
        n=int(a.size),
    )
