"""Evaluation: MSE (paper eq. 1), cohort aggregation, boxplots, tables."""

from .boxplot import BoxplotStats, boxplot_stats
from .comparison import best_cells, format_table, score_results
from .metrics import CohortScore, cohort_score, mse_score, percentage_change
from .per_variable import (VariableScore, aggregate_variable_scores,
                           per_variable_mse)
from .stats import PairedComparison, compare_conditions
from .reports import (write_per_individual_csv, write_table_csv,
                      write_table_markdown)

__all__ = ["BoxplotStats", "boxplot_stats", "best_cells", "format_table",
           "score_results", "CohortScore", "cohort_score", "mse_score",
           "percentage_change",
           "VariableScore", "aggregate_variable_scores", "per_variable_mse",
           "PairedComparison", "compare_conditions",
           "write_table_csv", "write_table_markdown",
           "write_per_individual_csv"]
