"""Boxplot statistics for Fig. 3 (MSE distributions across individuals)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoxplotStats", "boxplot_stats"]


@dataclass(frozen=True)
class BoxplotStats:
    """Tukey boxplot summary of a sample (plus the mean, which Fig. 3 marks)."""

    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    mean: float
    outliers: tuple[float, ...]

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def boxplot_stats(values) -> BoxplotStats:
    """Compute Tukey statistics (1.5 IQR whiskers) of per-individual MSEs."""
    x = np.asarray(list(values), dtype=np.float64)
    if x.size == 0:
        raise ValueError("need at least one value")
    q1, median, q3 = np.percentile(x, [25, 50, 75])
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inside = x[(x >= low_fence) & (x <= high_fence)]
    outliers = x[(x < low_fence) | (x > high_fence)]
    return BoxplotStats(
        median=float(median), q1=float(q1), q3=float(q3),
        whisker_low=float(inside.min()), whisker_high=float(inside.max()),
        mean=float(x.mean()), outliers=tuple(float(v) for v in np.sort(outliers)),
    )
