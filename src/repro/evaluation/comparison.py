"""Table assembly: turning cohort results into paper-style rows.

The experiments produce ``IndividualResult`` lists per condition; these
helpers aggregate them into :class:`CohortScore` cells and render aligned
text tables matching the layout of Tables II and III.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..training.faults import CellFailure
from ..training.personalized import IndividualResult
from .metrics import CohortScore, cohort_score

__all__ = ["score_results", "format_table", "best_cells"]


def score_results(results: Sequence[IndividualResult]) -> CohortScore:
    """Aggregate one condition's individual results into a table cell.

    Failed cells (:class:`~repro.training.faults.CellFailure` records
    collected by the fault-tolerant scheduler) are excluded from the
    mean/std and counted on ``CohortScore.n_failed``, so a partially
    degraded cohort still renders instead of crashing the table.
    """
    survivors = [r.test_mse for r in results
                 if not isinstance(r, CellFailure)]
    n_failed = sum(isinstance(r, CellFailure) for r in results)
    return cohort_score(survivors, n_failed=n_failed)


def format_table(title: str, rows: Mapping[str, Mapping[str, CohortScore]],
                 columns: Sequence[str]) -> str:
    """Render ``rows[row_label][column] -> CohortScore`` as aligned text.

    Matches the paper's cell format ``mean(std)`` and marks the best value
    per column with ``*``.
    """
    col_best = {}
    for col in columns:
        scores = [cells[col].mean for cells in rows.values()
                  if col in cells and math.isfinite(cells[col].mean)]
        col_best[col] = min(scores) if scores else None
    label_width = max([len(r) for r in rows] + [len("Model")]) + 2
    header = "Model".ljust(label_width) + "  ".join(c.center(14) for c in columns)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for label, cells in rows.items():
        rendered = []
        for col in columns:
            if col not in cells:
                rendered.append("-".center(14))
                continue
            cell = cells[col]
            text = str(cell)
            if col_best[col] is not None and cell.mean == col_best[col]:
                text += "*"
            rendered.append(text.center(14))
        lines.append(label.ljust(label_width) + "  ".join(rendered))
    lines.append("-" * len(header))
    lines.append("* best score per column")
    return "\n".join(lines)


def best_cells(rows: Mapping[str, Mapping[str, CohortScore]]) -> dict[str, tuple[str, float]]:
    """Best (row, mean) per column — used by experiment summaries."""
    out: dict[str, tuple[str, float]] = {}
    for label, cells in rows.items():
        for col, score in cells.items():
            if not math.isfinite(score.mean):
                continue  # all-failed cell: nothing to rank
            if col not in out or score.mean < out[col][1]:
                out[col] = (label, score.mean)
    return out
