"""Result persistence: CSV and Markdown exports of experiment tables.

The experiment runners return in-memory row/score structures; downstream
users (and EXPERIMENTS.md) want them on disk.  These writers are
dependency-free (plain ``csv`` module) and lossless: per-individual scores
are preserved, not just the aggregated cells.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

from .metrics import CohortScore

__all__ = ["write_table_csv", "write_table_markdown", "write_per_individual_csv"]


def write_table_csv(path, rows: Mapping[str, Mapping[str, CohortScore]],
                    columns: Sequence[str],
                    fallback_reasons: Mapping[tuple[str, str], str] | None
                    = None) -> Path:
    """Write a table of CohortScores as CSV (mean, std, n, failed per cell).

    ``{column}_failed`` counts individuals excluded from the cell's
    mean/std because their training cell failed for good under the
    fault-tolerant scheduler (0 for a fully healthy run).

    ``fallback_reasons`` is strictly opt-in: when given (a mapping from
    ``(row label, column)`` to a summary string, see
    ``ema-gnn table2 --explain-fallbacks``), each column gains a
    ``{column}_fallback_reason`` field.  When ``None`` (the default) the
    output is byte-identical to the pre-diagnostics format — CI's
    byte-comparison jobs depend on that.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["model"]
        for column in columns:
            header += [f"{column}_mean", f"{column}_std", f"{column}_n",
                       f"{column}_failed"]
            if fallback_reasons is not None:
                header += [f"{column}_fallback_reason"]
        writer.writerow(header)
        for label, cells in rows.items():
            record = [label]
            for column in columns:
                cell = cells.get(column)
                if cell is None:
                    record += ["", "", "", ""]
                else:
                    record += [f"{cell.mean:.6f}", f"{cell.std:.6f}",
                               cell.count, cell.n_failed]
                if fallback_reasons is not None:
                    record += [fallback_reasons.get((label, column), "")]
            writer.writerow(record)
    return path


def write_table_markdown(path, title: str,
                         rows: Mapping[str, Mapping[str, CohortScore]],
                         columns: Sequence[str]) -> Path:
    """Write a table of CohortScores as a Markdown table."""
    path = Path(path)
    lines = [f"### {title}", "",
             "| Model | " + " | ".join(columns) + " |",
             "|" + "---|" * (len(columns) + 1)]
    best = {c: min((cells[c].mean for cells in rows.values() if c in cells),
                   default=None) for c in columns}
    for label, cells in rows.items():
        rendered = []
        for column in columns:
            cell = cells.get(column)
            if cell is None:
                rendered.append("–")
                continue
            text = str(cell)
            if best[column] is not None and cell.mean == best[column]:
                text = f"**{text}**"
            rendered.append(text)
        lines.append(f"| {label} | " + " | ".join(rendered) + " |")
    lines.append("")
    path.write_text("\n".join(lines))
    return path


def write_per_individual_csv(path, rows: Mapping[str, Mapping[str, CohortScore]],
                             columns: Sequence[str]) -> Path:
    """Write the underlying per-individual MSEs (long format)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["model", "condition", "individual_index", "test_mse"])
        for label, cells in rows.items():
            for column in columns:
                cell = cells.get(column)
                if cell is None:
                    continue
                for index, value in enumerate(cell.per_individual):
                    writer.writerow([label, column, index, f"{value:.6f}"])
    return path
