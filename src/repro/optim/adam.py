"""Adam optimizer — the paper trains every model with Adam at lr 0.01."""

from __future__ import annotations

import warnings
from typing import Iterable

import numpy as np

from ..autodiff import no_grad
from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias-corrected moment estimates.

    Hyperparameters beyond ``lr`` are keyword-only (the unified optimizer
    signature shared with :class:`~repro.optim.sgd.SGD`); passing them
    positionally still works but emits a ``DeprecationWarning``.

    ``fused=True`` switches :meth:`step` to a flat-buffer update: the
    gradients of all parameters (grouped by dtype) are gathered into one
    contiguous buffer, the Adam arithmetic runs *once* over that buffer
    into preallocated scratch, and the per-parameter updates are views
    into the result.  The moment states ``_m``/``_v`` become views into
    the flat storage, so the per-step ufunc count drops from ~13 times
    the parameter count to ~3 times plus a constant — the win the
    profiler points at for this codebase's many-small-parameter models.
    Every elementwise op matches the reference loop's order/association
    (only IEEE-commutative swaps such as ``grad * (1 - beta1)`` for
    ``(1 - beta1) * grad`` are applied), and elementwise arithmetic is
    shape-blind, so the fused path is bit-identical to the reference
    loop (asserted in ``tests/optim``).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 *args, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0,
                 fused: bool = False):
        if args:
            if len(args) > 3:
                raise TypeError(
                    f"Adam() takes at most 3 positional hyperparameters "
                    f"(betas, eps, weight_decay), got {len(args)}")
            warnings.warn(
                "positional Adam hyperparameters are deprecated; pass "
                "betas=, eps=, weight_decay= as keywords",
                DeprecationWarning, stacklevel=2)
            betas, eps, weight_decay = (
                tuple(args) + (betas, eps, weight_decay)[len(args):])
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.fused = bool(fused)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        #: Fused-path state: (pattern key, [group, ...]); built lazily at
        #: the first fused step and rebuilt if the set of parameters that
        #: actually carry gradients changes.
        self._flat = None

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        if self.fused:
            self._fused_step(bias1, bias2)
            return
        with no_grad():
            for p, m, v in zip(self.parameters, self._m, self._v):
                if p.grad is None:
                    continue
                grad = p.grad
                if self.weight_decay:
                    grad = grad + self.weight_decay * p.data
                m *= self.beta1
                m += (1.0 - self.beta1) * grad
                v *= self.beta2
                v += (1.0 - self.beta2) * grad * grad
                m_hat = m / bias1
                v_hat = v / bias2
                p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _ensure_flat(self) -> list:
        """(Re)build the flat update groups for the current grad pattern.

        One group per dtype among the parameters that carry a gradient.
        The per-parameter moment arrays in ``_m``/``_v`` are rebound to
        views into the group's contiguous storage (carrying their current
        values over), so state survives pattern changes and stays
        inspectable per parameter.
        """
        pattern = tuple(p.grad is not None for p in self.parameters)
        if self._flat is not None and self._flat[0] == pattern:
            return self._flat[1]
        by_dtype: dict = {}
        for i, p in enumerate(self.parameters):
            if p.grad is not None:
                by_dtype.setdefault(p.data.dtype.str, []).append(i)
        groups = []
        for indices in by_dtype.values():
            params = [self.parameters[i] for i in indices]
            sizes = [p.data.size for p in params]
            total = sum(sizes)
            dtype = params[0].data.dtype
            m_flat = np.empty(total, dtype=dtype)
            v_flat = np.empty(total, dtype=dtype)
            grad_flat = np.empty(total, dtype=dtype)
            data_flat = np.empty(total, dtype=dtype)
            a_flat = np.empty(total, dtype=dtype)
            offset = 0
            slots = []
            for i, p, size in zip(indices, params, sizes):
                view = slice(offset, offset + size)
                shape = p.data.shape
                np.copyto(m_flat[view].reshape(shape), self._m[i])
                np.copyto(v_flat[view].reshape(shape), self._v[i])
                self._m[i] = m_flat[view].reshape(shape)
                self._v[i] = v_flat[view].reshape(shape)
                # Persistent per-parameter views into the flat buffers, so
                # the hot loop never re-slices or re-shapes.
                slots.append((p, grad_flat[view].reshape(shape),
                              data_flat[view].reshape(shape),
                              a_flat[view].reshape(shape)))
                offset += size
            groups.append({"slots": slots, "m": m_flat, "v": v_flat,
                           "grad": grad_flat, "data": data_flat,
                           "a": a_flat, "b": np.empty(total, dtype=dtype)})
        self._flat = (pattern, groups)
        return groups

    def _fused_step(self, bias1: float, bias2: float) -> None:
        # Every ufunc line mirrors one op of the reference loop, applied
        # once to the concatenation of all parameters; elementwise
        # arithmetic is shape-blind and only bitwise-exact IEEE 754
        # commutations are applied, so the update is bit-identical.
        one_minus_beta1 = 1.0 - self.beta1
        one_minus_beta2 = 1.0 - self.beta2
        with no_grad():
            for g in self._ensure_flat():
                slots, m, v = g["slots"], g["m"], g["v"]
                grad, a, b = g["grad"], g["a"], g["b"]
                for p, grad_view, _, _ in slots:
                    np.copyto(grad_view, p.grad)
                if self.weight_decay:
                    for p, _, data_view, _ in slots:
                        np.copyto(data_view, p.data)
                    np.multiply(g["data"], self.weight_decay, out=a)
                    a += grad
                    grad = a
                m *= self.beta1
                np.multiply(grad, one_minus_beta1, out=b)
                m += b
                np.multiply(grad, one_minus_beta2, out=b)
                b *= grad
                v *= self.beta2
                v += b
                np.divide(v, bias2, out=b)               # v_hat
                np.sqrt(b, out=b)
                b += self.eps
                np.divide(m, bias1, out=a)               # m_hat (grad dead)
                a *= self.lr
                a /= b
                for p, _, _, update_view in slots:
                    p.data -= update_view
