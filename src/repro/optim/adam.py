"""Adam optimizer — the paper trains every model with Adam at lr 0.01."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..autodiff import no_grad
from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias-corrected moment estimates."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        with no_grad():
            for p, m, v in zip(self.parameters, self._m, self._v):
                if p.grad is None:
                    continue
                grad = p.grad
                if self.weight_decay:
                    grad = grad + self.weight_decay * p.data
                m *= self.beta1
                m += (1.0 - self.beta1) * grad
                v *= self.beta2
                v += (1.0 - self.beta2) * grad * grad
                m_hat = m / bias1
                v_hat = v / bias2
                p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
