"""Adam optimizer — the paper trains every model with Adam at lr 0.01."""

from __future__ import annotations

import warnings
from typing import Iterable

import numpy as np

from ..autodiff import no_grad
from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam", "StackedAdam"]


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias-corrected moment estimates.

    Hyperparameters beyond ``lr`` are keyword-only (the unified optimizer
    signature shared with :class:`~repro.optim.sgd.SGD`); passing them
    positionally still works but emits a ``DeprecationWarning``.

    ``fused=True`` switches :meth:`step` to a flat-buffer update: the
    gradients of all parameters (grouped by dtype) are gathered into one
    contiguous buffer, the Adam arithmetic runs *once* over that buffer
    into preallocated scratch, and the per-parameter updates are views
    into the result.  The moment states ``_m``/``_v`` become views into
    the flat storage, so the per-step ufunc count drops from ~13 times
    the parameter count to ~3 times plus a constant — the win the
    profiler points at for this codebase's many-small-parameter models.
    Every elementwise op matches the reference loop's order/association
    (only IEEE-commutative swaps such as ``grad * (1 - beta1)`` for
    ``(1 - beta1) * grad`` are applied), and elementwise arithmetic is
    shape-blind, so the fused path is bit-identical to the reference
    loop (asserted in ``tests/optim``).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 *args, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0,
                 fused: bool = False):
        if args:
            if len(args) > 3:
                raise TypeError(
                    f"Adam() takes at most 3 positional hyperparameters "
                    f"(betas, eps, weight_decay), got {len(args)}")
            warnings.warn(
                "positional Adam hyperparameters are deprecated; pass "
                "betas=, eps=, weight_decay= as keywords",
                DeprecationWarning, stacklevel=2)
            betas, eps, weight_decay = (
                tuple(args) + (betas, eps, weight_decay)[len(args):])
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self.fused = bool(fused)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        #: Fused-path state: (pattern key, [group, ...]); built lazily at
        #: the first fused step and rebuilt if the set of parameters that
        #: actually carry gradients changes.
        self._flat = None

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        if self.fused:
            self._fused_step(bias1, bias2)
            return
        with no_grad():
            for p, m, v in zip(self.parameters, self._m, self._v):
                if p.grad is None:
                    continue
                grad = p.grad
                if self.weight_decay:
                    grad = grad + self.weight_decay * p.data
                m *= self.beta1
                m += (1.0 - self.beta1) * grad
                v *= self.beta2
                v += (1.0 - self.beta2) * grad * grad
                m_hat = m / bias1
                v_hat = v / bias2
                p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _ensure_flat(self) -> list:
        """(Re)build the flat update groups for the current grad pattern.

        One group per dtype among the parameters that carry a gradient.
        The per-parameter moment arrays in ``_m``/``_v`` are rebound to
        views into the group's contiguous storage (carrying their current
        values over), so state survives pattern changes and stays
        inspectable per parameter.
        """
        pattern = tuple(p.grad is not None for p in self.parameters)
        if self._flat is not None and self._flat[0] == pattern:
            return self._flat[1]
        by_dtype: dict = {}
        for i, p in enumerate(self.parameters):
            if p.grad is not None:
                by_dtype.setdefault(p.data.dtype.str, []).append(i)
        groups = []
        for indices in by_dtype.values():
            params = [self.parameters[i] for i in indices]
            sizes = [p.data.size for p in params]
            total = sum(sizes)
            dtype = params[0].data.dtype
            m_flat = np.empty(total, dtype=dtype)
            v_flat = np.empty(total, dtype=dtype)
            grad_flat = np.empty(total, dtype=dtype)
            data_flat = np.empty(total, dtype=dtype)
            a_flat = np.empty(total, dtype=dtype)
            offset = 0
            slots = []
            for i, p, size in zip(indices, params, sizes):
                view = slice(offset, offset + size)
                shape = p.data.shape
                np.copyto(m_flat[view].reshape(shape), self._m[i])
                np.copyto(v_flat[view].reshape(shape), self._v[i])
                self._m[i] = m_flat[view].reshape(shape)
                self._v[i] = v_flat[view].reshape(shape)
                # Persistent per-parameter views into the flat buffers, so
                # the hot loop never re-slices or re-shapes.
                slots.append((p, grad_flat[view].reshape(shape),
                              data_flat[view].reshape(shape),
                              a_flat[view].reshape(shape)))
                offset += size
            groups.append({"slots": slots, "m": m_flat, "v": v_flat,
                           "grad": grad_flat, "data": data_flat,
                           "a": a_flat, "b": np.empty(total, dtype=dtype)})
        self._flat = (pattern, groups)
        return groups

    def _fused_step(self, bias1: float, bias2: float) -> None:
        # Every ufunc line mirrors one op of the reference loop, applied
        # once to the concatenation of all parameters; elementwise
        # arithmetic is shape-blind and only bitwise-exact IEEE 754
        # commutations are applied, so the update is bit-identical.
        one_minus_beta1 = 1.0 - self.beta1
        one_minus_beta2 = 1.0 - self.beta2
        with no_grad():
            for g in self._ensure_flat():
                slots, m, v = g["slots"], g["m"], g["v"]
                grad, a, b = g["grad"], g["a"], g["b"]
                for p, grad_view, _, _ in slots:
                    np.copyto(grad_view, p.grad)
                if self.weight_decay:
                    for p, _, data_view, _ in slots:
                        np.copyto(data_view, p.data)
                    np.multiply(g["data"], self.weight_decay, out=a)
                    a += grad
                    grad = a
                m *= self.beta1
                np.multiply(grad, one_minus_beta1, out=b)
                m += b
                np.multiply(grad, one_minus_beta2, out=b)
                b *= grad
                v *= self.beta2
                v += b
                np.divide(v, bias2, out=b)               # v_hat
                np.sqrt(b, out=b)
                b += self.eps
                np.divide(m, bias1, out=a)               # m_hat (grad dead)
                a *= self.lr
                a /= b
                for p, _, _, update_view in slots:
                    p.data -= update_view


class StackedAdam(Optimizer):
    """Adam over ``K`` independent parameter lanes stacked on axis 0.

    The stacked cohort executor (:mod:`repro.training.stacked`) trains
    ``K`` individuals at once by stacking each model parameter into one
    ``(K, *shape)`` array.  This optimizer runs one Adam update over the
    whole stack: per dtype group, gradients are gathered into a ``(K, P)``
    flat buffer and the exact ufunc sequence of :class:`Adam`'s fused step
    runs once over it.  Elementwise arithmetic is shape-blind, so each
    lane's row is bit-identical to what a per-individual :class:`Adam`
    (reference loop or fused — they match) would have produced.

    ``step(active=mask)`` freezes lanes: rows where ``mask`` is False are
    excluded from the update entirely — their weights *and* their moment
    state stay untouched, exactly as if that individual's solo fit had
    already returned.  The step count is global, which is equivalent to a
    per-lane count because every lane starts at step 0 and frozen lanes
    never resume: an active lane's global ``t`` always equals the solo
    ``t``.  (Gradients of frozen lanes may be garbage — NaN from a
    diverged forward — and are never read.)
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 *, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        lanes = {p.data.shape[0] for p in self.parameters}
        if len(lanes) != 1:
            raise ValueError(
                f"stacked parameters disagree on lane count: {sorted(lanes)}")
        self.lanes = lanes.pop()
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._flat = None

    def step(self, active: np.ndarray | None = None) -> None:
        """Update all lanes, or only the rows where ``active`` is True."""
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        if active is not None:
            active = np.asarray(active, dtype=bool)
            if active.shape != (self.lanes,):
                raise ValueError(f"active mask must have shape "
                                 f"({self.lanes},), got {active.shape}")
            if active.all():
                active = None
        with no_grad():
            for group in self._ensure_flat():
                if active is None:
                    self._full_step(group, bias1, bias2)
                else:
                    self._masked_step(group, bias1, bias2, active)

    def _ensure_flat(self) -> list:
        """(Re)build ``(K, P)`` update groups for the current grad pattern.

        Same contract as :meth:`Adam._ensure_flat`, with a leading lane
        axis on every buffer: per-parameter views are column blocks
        ``flat[:, a:b].reshape((K,) + shape)`` (valid views — the split
        axis is contiguous within each row), so the hot loop never
        re-slices.  ``_m``/``_v`` are rebound to views carrying their
        current values over, so moment state survives pattern changes.
        """
        pattern = tuple(p.grad is not None for p in self.parameters)
        if self._flat is not None and self._flat[0] == pattern:
            return self._flat[1]
        by_dtype: dict = {}
        for i, p in enumerate(self.parameters):
            if p.grad is not None:
                by_dtype.setdefault(p.data.dtype.str, []).append(i)
        lanes = self.lanes
        groups = []
        for indices in by_dtype.values():
            params = [self.parameters[i] for i in indices]
            sizes = [p.data.size // lanes for p in params]
            total = sum(sizes)
            dtype = params[0].data.dtype
            m_flat = np.empty((lanes, total), dtype=dtype)
            v_flat = np.empty((lanes, total), dtype=dtype)
            grad_flat = np.empty((lanes, total), dtype=dtype)
            data_flat = np.empty((lanes, total), dtype=dtype)
            a_flat = np.empty((lanes, total), dtype=dtype)
            offset = 0
            slots = []
            for i, p, size in zip(indices, params, sizes):
                view = slice(offset, offset + size)
                shape = p.data.shape
                np.copyto(m_flat[:, view].reshape(shape), self._m[i])
                np.copyto(v_flat[:, view].reshape(shape), self._v[i])
                self._m[i] = m_flat[:, view].reshape(shape)
                self._v[i] = v_flat[:, view].reshape(shape)
                slots.append((p, grad_flat[:, view].reshape(shape),
                              data_flat[:, view].reshape(shape),
                              a_flat[:, view].reshape(shape), view))
                offset += size
            groups.append({"slots": slots, "m": m_flat, "v": v_flat,
                           "grad": grad_flat, "data": data_flat,
                           "a": a_flat, "b": np.empty((lanes, total),
                                                      dtype=dtype)})
        self._flat = (pattern, groups)
        return groups

    def _full_step(self, g: dict, bias1: float, bias2: float) -> None:
        # Identical ufunc sequence to Adam._fused_step, over (K, P) buffers.
        slots, m, v = g["slots"], g["m"], g["v"]
        grad, a, b = g["grad"], g["a"], g["b"]
        for p, grad_view, _, _, _ in slots:
            np.copyto(grad_view, p.grad)
        if self.weight_decay:
            for p, _, data_view, _, _ in slots:
                np.copyto(data_view, p.data)
            np.multiply(g["data"], self.weight_decay, out=a)
            a += grad
            grad = a
        m *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=b)
        m += b
        np.multiply(grad, 1.0 - self.beta2, out=b)
        b *= grad
        v *= self.beta2
        v += b
        np.divide(v, bias2, out=b)
        np.sqrt(b, out=b)
        b += self.eps
        np.divide(m, bias1, out=a)
        a *= self.lr
        a /= b
        with no_grad():  # lexically, for the linter — step() already holds it
            for p, _, _, update_view, _ in slots:
                p.data -= update_view

    def _masked_step(self, g: dict, bias1: float, bias2: float,
                     active: np.ndarray) -> None:
        # Gather the active rows, run the same ufunc sequence on the
        # (A, P) block, scatter moments and weight updates back.  Frozen
        # rows are never read or written.
        idx = np.flatnonzero(active)
        if idx.size == 0:
            return
        slots, m, v = g["slots"], g["m"], g["v"]
        for p, grad_view, _, _, _ in slots:
            np.copyto(grad_view, p.grad)
        grad = g["grad"][idx]
        if self.weight_decay:
            for p, _, data_view, _, _ in slots:
                np.copyto(data_view, p.data)
            a = g["data"][idx]
            a *= self.weight_decay
            a += grad
            grad = a
        m_act = m[idx]
        v_act = v[idx]
        m_act *= self.beta1
        b = np.multiply(grad, 1.0 - self.beta1)
        m_act += b
        np.multiply(grad, 1.0 - self.beta2, out=b)
        b *= grad
        v_act *= self.beta2
        v_act += b
        m[idx] = m_act
        v[idx] = v_act
        np.divide(v_act, bias2, out=b)
        np.sqrt(b, out=b)
        b += self.eps
        a = np.divide(m_act, bias1)
        a *= self.lr
        a /= b
        with no_grad():  # lexically, for the linter — step() already holds it
            for p, _, _, _, view in slots:
                lane_shape = p.data.shape[1:]
                update = a[:, view].reshape((idx.size,) + lane_shape)
                data = p.data
                data[idx] -= update
                p.data = data  # reassign to bump the version counter
