"""Stochastic gradient descent with classical momentum."""

from __future__ import annotations

import warnings
from typing import Iterable

import numpy as np

from ..autodiff import no_grad
from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """``v = momentum * v + grad; p -= lr * v`` with optional weight decay.

    Hyperparameters beyond ``lr`` are keyword-only (the unified optimizer
    signature shared with :class:`~repro.optim.adam.Adam`); passing them
    positionally still works but emits a ``DeprecationWarning``.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 *args, momentum: float = 0.0, weight_decay: float = 0.0):
        if args:
            if len(args) > 2:
                raise TypeError(
                    f"SGD() takes at most 2 positional hyperparameters "
                    f"(momentum, weight_decay), got {len(args)}")
            warnings.warn(
                "positional SGD hyperparameters are deprecated; pass "
                "momentum=, weight_decay= as keywords",
                DeprecationWarning, stacklevel=2)
            momentum, weight_decay = (
                tuple(args) + (momentum, weight_decay)[len(args):])
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        with no_grad():
            for p, velocity in zip(self.parameters, self._velocity):
                if p.grad is None:
                    continue
                grad = p.grad
                if self.weight_decay:
                    grad = grad + self.weight_decay * p.data
                if self.momentum:
                    velocity *= self.momentum
                    velocity += grad
                    grad = velocity
                p.data -= self.lr * grad
