"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable

from ..nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base optimizer holding a concrete list of parameters.

    Subclasses implement :meth:`step`.  ``zero_grad`` clears gradients so
    the usual ``zero_grad -> backward -> step`` loop works.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
