"""Optimizers and gradient utilities."""

from .optimizer import Optimizer
from .sgd import SGD
from .adam import Adam, StackedAdam
from .clip import clip_grad_norm, clip_grad_value
from .registry import OPTIMIZER_REGISTRY, get_optimizer, register_optimizer
from .schedule import ReduceLROnPlateau, StepLR

__all__ = ["Optimizer", "SGD", "Adam", "StackedAdam",
           "clip_grad_norm", "clip_grad_value",
           "StepLR", "ReduceLROnPlateau", "OPTIMIZER_REGISTRY",
           "get_optimizer", "register_optimizer"]
