"""Optimizers and gradient utilities."""

from .optimizer import Optimizer
from .sgd import SGD
from .adam import Adam
from .clip import clip_grad_norm, clip_grad_value
from .schedule import ReduceLROnPlateau, StepLR

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "clip_grad_value",
           "StepLR", "ReduceLROnPlateau"]
