"""Optimizer registry: construct any optimizer by name.

Mirrors the callback registry
(:data:`repro.training.callbacks.CALLBACK_REGISTRY`): a flat
``name -> factory`` mapping, so ``TrainerConfig``/``ExperimentConfig`` can
carry a picklable optimizer *name* (plus keyword arguments) into parallel
cohort workers instead of a live object, and the CLI can expose
``--optimizer {adam,sgd}`` without importing concrete classes.
"""

from __future__ import annotations

from typing import Callable

from .adam import Adam
from .optimizer import Optimizer
from .sgd import SGD

__all__ = ["OPTIMIZER_REGISTRY", "get_optimizer", "register_optimizer"]

OPTIMIZER_REGISTRY: dict[str, Callable[..., Optimizer]] = {
    "adam": Adam,
    "sgd": SGD,
}


def get_optimizer(name: str, parameters, **kwargs) -> Optimizer:
    """Build the optimizer registered under ``name``.

    ``kwargs`` are forwarded to the factory — all registered optimizers
    share the uniform signature ``(parameters, lr=..., *, <keyword-only
    hyperparameters>)``.
    """
    try:
        factory = OPTIMIZER_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; registered: "
            f"{sorted(OPTIMIZER_REGISTRY)}") from None
    return factory(parameters, **kwargs)


def register_optimizer(name: str, factory: Callable[..., Optimizer], *,
                       overwrite: bool = False) -> None:
    """Add ``factory`` under ``name`` (refuses silent replacement)."""
    if not overwrite and name in OPTIMIZER_REGISTRY:
        raise ValueError(
            f"optimizer {name!r} is already registered; pass "
            f"overwrite=True to replace it")
    OPTIMIZER_REGISTRY[name] = factory
