"""Learning-rate schedules (step decay and plateau reduction)."""

from __future__ import annotations

from .optimizer import Optimizer

__all__ = ["StepLR", "ReduceLROnPlateau"]


class StepLR:
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class ReduceLROnPlateau:
    """Halve the LR when the monitored loss stops improving."""

    def __init__(self, optimizer: Optimizer, patience: int = 10,
                 factor: float = 0.5, min_lr: float = 1e-5):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self.optimizer = optimizer
        self.patience = patience
        self.factor = factor
        self.min_lr = min_lr
        self._best = float("inf")
        self._stale = 0

    def step(self, loss: float) -> None:
        if loss < self._best - 1e-12:
            self._best = loss
            self._stale = 0
            return
        self._stale += 1
        if self._stale >= self.patience:
            self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
            self._stale = 0
