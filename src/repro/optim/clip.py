"""Gradient clipping utilities (MTGNN trains with grad-norm clipping)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..autodiff import no_grad
from ..nn.module import Parameter

__all__ = ["clip_grad_norm", "clip_grad_value"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for divergence diagnostics).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        with no_grad():
            for p in params:
                p.grad *= scale
    return total


def clip_grad_value(parameters: Iterable[Parameter], max_value: float) -> None:
    """Clamp every gradient element to [-max_value, max_value]."""
    if max_value <= 0:
        raise ValueError("max_value must be positive")
    with no_grad():
        for p in parameters:
            if p.grad is not None:
                np.clip(p.grad, -max_value, max_value, out=p.grad)
