"""Thin setup.py shim.

The environment has setuptools but no ``wheel`` package (offline), so PEP 660
editable installs fail with ``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` use the legacy
``setup.py develop`` path, which needs only setuptools.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
