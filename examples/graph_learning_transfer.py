#!/usr/bin/env python3
"""Graph-learning transfer: recycle MTGNN's learned graph (Experiment C).

For a couple of participants:

1. train MTGNN with its graph learner warm-started from the kNN graph;
2. export and post-process the learned adjacency;
3. compare the learned graph to the static one (correlation statistic);
4. retrain ASTGCN twice — once with the static kNN graph, once with the
   MTGNN-learned refinement — and report the per-individual % change in
   test MSE (Fig. 3's red annotations).

Run:  python examples/graph_learning_transfer.py
"""

import numpy as np

import repro.autodiff as ad
from repro.data import PreprocessingPipeline, SynthesisConfig, generate_cohort, split_windows
from repro.graphs import build_adjacency, graph_correlation, prepare_learned_graph
from repro.models import create_model
from repro.training import Trainer, TrainerConfig

ad.set_default_dtype(np.float32)

SEQ_LEN = 5
EPOCHS = 50


def train_and_score(name, person, graph, seed):
    split = split_windows(person.values, SEQ_LEN)
    model = create_model(name, person.num_variables, SEQ_LEN,
                         adjacency=graph, seed=seed)
    Trainer(TrainerConfig(epochs=EPOCHS)).fit(model, split.train)
    return model, Trainer.evaluate(model, split.test)


def main() -> None:
    raw = generate_cohort(SynthesisConfig(num_individuals=12, seed=33))
    cohort, _ = PreprocessingPipeline(min_compliance=0.5, max_individuals=2).run(raw)

    changes = []
    for person in cohort:
        split_boundary = int(round(0.7 * person.num_time_points))
        static = build_adjacency(person.values[:split_boundary], "knn",
                                 gdt=0.2, k=5)

        mtgnn, mtgnn_mse = train_and_score("mtgnn", person, static, seed=11)
        learned = prepare_learned_graph(mtgnn.learned_graph(),
                                        match_edges_of=static)
        similarity = graph_correlation(static, learned)

        _, static_mse = train_and_score("astgcn", person, static, seed=11)
        _, learned_mse = train_and_score("astgcn", person, learned, seed=11)
        pct = (learned_mse - static_mse) / static_mse * 100.0
        changes.append(pct)

        print(f"{person.identifier}: MTGNN {mtgnn_mse:.3f} | "
              f"ASTGCN kNN {static_mse:.3f} -> kNN_learned {learned_mse:.3f} "
              f"({pct:+.1f}%) | graph similarity {similarity * 100:.0f}%")

    print(f"\nmean relative change: {np.mean(changes):+.1f}% "
          "(negative = the learned graph helped, as Fig. 3 reports for kNN)")


if __name__ == "__main__":
    main()
