#!/usr/bin/env python3
"""Graph-construction study: which similarity metric describes a person best?

A compact version of the paper's Experiment B for a single participant:
builds every static graph (Euclidean, kNN, DTW, correlation, random) at
several density thresholds, reports their structural properties, how well
each recovers the generator's ground-truth interaction graph, and how an
ASTGCN forecaster performs with each.

Run:  python examples/graph_construction_study.py
"""

import numpy as np

import repro.autodiff as ad
from repro.data import PreprocessingPipeline, SynthesisConfig, generate_cohort, split_windows
from repro.graphs import build_adjacency, density, graph_correlation
from repro.models import create_model
from repro.training import Trainer, TrainerConfig

ad.set_default_dtype(np.float32)

SEQ_LEN = 5
GDTS = (0.2, 1.0)
METHODS = ("euclidean", "knn", "dtw", "correlation", "random")


def main() -> None:
    raw = generate_cohort(SynthesisConfig(num_individuals=10, seed=21))
    cohort, _ = PreprocessingPipeline(min_compliance=0.5, max_individuals=1).run(raw)
    person = cohort[0]
    truth = person.ground_truth_graph
    split = split_windows(person.values, SEQ_LEN)
    train_segment = person.values[:split.boundary]
    trainer = Trainer(TrainerConfig(epochs=40))

    print(f"participant {person.identifier}: {person.num_time_points} x "
          f"{person.num_variables}")
    print(f"{'graph':14s} {'GDT':>5s} {'density':>8s} {'vs truth':>9s} "
          f"{'ASTGCN MSE':>11s}")
    for method in METHODS:
        for gdt in GDTS:
            kwargs = {"k": 5} if method == "knn" else {}
            graph = build_adjacency(train_segment, method, gdt=gdt,
                                    seed=0, **kwargs)
            recovery = graph_correlation(graph, truth)
            model = create_model("astgcn", person.num_variables, SEQ_LEN,
                                 adjacency=graph, seed=3)
            trainer.fit(model, split.train)
            mse = Trainer.evaluate(model, split.test)
            print(f"{method:14s} {int(gdt * 100):4d}% {density(graph):8.2f} "
                  f"{recovery:9.2f} {mse:11.3f}")

    print("\nInformative graphs (correlation/DTW) recover the ground-truth "
          "structure;\nrandom graphs carry none of it — and ASTGCN's accuracy "
          "follows (paper, Experiment B).")


if __name__ == "__main__":
    main()
