#!/usr/bin/env python3
"""Classical baselines and per-variable error anatomy.

Extends the paper in the two directions its discussion explicitly opens:

1. **Where do GNNs sit against the classical EMA toolchain?**  Related
   work (§II-A) grounds the field in VAR models; this script pits the
   ridge VAR and the naive mean predictor against ASTGCN on the same
   personalized split.
2. **Which variables are hard to forecast?**  (§VII-C: "the effects across
   the MSE scores when predicting each of the variables should be further
   investigated.")  Per-variable MSEs are aggregated across the cohort and
   ranked.

Run:  python examples/baselines_and_variables.py
"""

import numpy as np

import repro.autodiff as ad
from repro.data import PreprocessingPipeline, SynthesisConfig, generate_cohort, split_windows
from repro.evaluation import aggregate_variable_scores, cohort_score, per_variable_mse
from repro.graphs import build_adjacency
from repro.models import NaiveMeanForecaster, VARForecaster, create_model
from repro.training import Trainer, TrainerConfig

ad.set_default_dtype(np.float32)

SEQ_LEN = 5
EPOCHS = 40


def main() -> None:
    raw = generate_cohort(SynthesisConfig(num_individuals=12, seed=99))
    cohort, _ = PreprocessingPipeline(min_compliance=0.5, max_individuals=3).run(raw)

    scores = {"naive": [], "var": [], "astgcn": []}
    per_variable: dict[str, np.ndarray] = {}
    trainer = Trainer(TrainerConfig(epochs=EPOCHS))

    for person in cohort:
        split = split_windows(person.values, SEQ_LEN)

        naive = NaiveMeanForecaster(person.num_variables, SEQ_LEN)
        naive.fit_windows(split.train)
        var = VARForecaster(person.num_variables, SEQ_LEN).fit_windows(split.train)

        graph = build_adjacency(person.values[:split.boundary], "correlation",
                                gdt=0.2)
        gnn = create_model("astgcn", person.num_variables, SEQ_LEN,
                           adjacency=graph, seed=4)
        trainer.fit(gnn, split.train)

        for key, model in (("naive", naive), ("var", var), ("astgcn", gnn)):
            prediction = model.predict(split.test.inputs)
            scores[key].append(float(np.mean((prediction - split.test.targets) ** 2)))
        per_variable[person.identifier] = per_variable_mse(
            split.test.targets, gnn.predict(split.test.inputs))

    print("cohort test MSE, mean(std) across individuals:")
    for key in ("naive", "var", "astgcn"):
        print(f"  {key:7s}: {cohort_score(scores[key])}")

    print("\nhardest / easiest variables for ASTGCN (cohort mean MSE):")
    ranked = aggregate_variable_scores(per_variable, cohort.variable_names)
    for score in ranked[:4]:
        print(f"  hard  {score.name:18s} {score.mean:.3f} "
              f"(worst: {score.worst_individual})")
    for score in ranked[-4:]:
        print(f"  easy  {score.name:18s} {score.mean:.3f} "
              f"(best: {score.best_individual})")


if __name__ == "__main__":
    main()
