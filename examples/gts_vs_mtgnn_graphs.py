#!/usr/bin/env python3
"""GTS-style vs MTGNN graph learning (the paper's closing future-work item).

Section VII-C: "The graphs learned by advanced methods, such as Graph for
Time Series (GTS) ... should be further compared to both static and
MTGNN-learned graphs."  For one participant this script trains

1. MTGNN with its adaptive node-embedding learner (warm-started from the
   correlation graph), and
2. MTGNN with a GTS-style learner (whole-series node features -> pairwise
   MLP -> edge probabilities),

then compares forecasting accuracy, each learned graph's correlation with
the static graph and with the generator's ground truth, and the community
structure each graph recovers.

Run:  python examples/gts_vs_mtgnn_graphs.py
"""

import numpy as np

import repro.autodiff as ad
from repro.data import PreprocessingPipeline, SynthesisConfig, generate_cohort, split_windows
from repro.graphs import (build_adjacency, detect_communities,
                          graph_correlation, prepare_learned_graph)
from repro.models import MTGNN
from repro.nn import GTSGraphLearner
from repro.training import Trainer, TrainerConfig

ad.set_default_dtype(np.float32)

SEQ_LEN = 5
EPOCHS = 50


def main() -> None:
    raw = generate_cohort(SynthesisConfig(num_individuals=10, seed=55))
    cohort, _ = PreprocessingPipeline(min_compliance=0.5, max_individuals=1).run(raw)
    person = cohort[0]
    split = split_windows(person.values, SEQ_LEN)
    train_segment = person.values[:split.boundary]
    static = build_adjacency(train_segment, "correlation", gdt=0.2)
    truth = person.ground_truth_graph
    trainer = Trainer(TrainerConfig(epochs=EPOCHS, weight_decay=1e-4))

    # 1. MTGNN's adaptive learner, warm-started from the static graph.
    adaptive = MTGNN(person.num_variables, SEQ_LEN, initial_adjacency=static,
                     rng=np.random.default_rng(1))
    trainer.fit(adaptive, split.train)
    adaptive_mse = Trainer.evaluate(adaptive, split.test)

    # 2. GTS-style learner over the whole training series.
    gts_learner = GTSGraphLearner(person.num_variables, train_segment,
                                  top_k=person.num_variables // 3,
                                  rng=np.random.default_rng(1))
    gts = MTGNN(person.num_variables, SEQ_LEN, custom_graph_learner=gts_learner,
                rng=np.random.default_rng(1))
    trainer.fit(gts, split.train)
    gts_mse = Trainer.evaluate(gts, split.test)

    print(f"participant {person.identifier} "
          f"({person.num_time_points} x {person.num_variables})\n")
    print(f"{'graph source':22s} {'test MSE':>9s} {'~static':>8s} "
          f"{'~truth':>7s} {'communities':>12s}")
    rows = [
        ("static correlation", None, static),
        ("MTGNN-learned", adaptive_mse,
         prepare_learned_graph(adaptive.learned_graph())),
        ("GTS-learned", gts_mse,
         prepare_learned_graph(gts.learned_graph())),
    ]
    for name, mse_value, graph in rows:
        communities = detect_communities(graph)
        mse_text = f"{mse_value:.3f}" if mse_value is not None else "    -"
        print(f"{name:22s} {mse_text:>9s} "
              f"{graph_correlation(graph, static):8.2f} "
              f"{graph_correlation(graph, truth):7.2f} "
              f"{communities.num_communities:6d} "
              f"(Q={communities.modularity:.2f})")

    print("\nBoth learners produce usable structure; how much each retains "
          "of the static prior\nand of the true interaction graph is the "
          "comparison the paper calls for.")


if __name__ == "__main__":
    main()
