#!/usr/bin/env python3
"""Cohort anatomy: what the synthetic EMA data looks like.

Shows the data substrate in detail — raw Likert responses, compliance and
missingness, the preprocessing pipeline's filtering decisions, per-variable
statistics, temporal autocorrelation (the "emotional inertia" signal), and
how well the similarity graphs recover each individual's ground-truth
interaction structure.

Run:  python examples/cohort_anatomy.py
"""

import numpy as np

from repro.data import (LOW_VARIANCE_NAMES, PreprocessingPipeline,
                        SynthesisConfig, generate_cohort)
from repro.graphs import correlation_adjacency, graph_correlation


def main() -> None:
    config = SynthesisConfig(num_individuals=40, seed=2024)
    raw = generate_cohort(config)
    print("=== raw cohort (before preprocessing) ===")
    for key, value in raw.summary().items():
        print(f"  {key}: {value}")
    print(f"  scheduled beeps per person: {config.scheduled_beeps} "
          f"({config.num_days} days x {config.beeps_per_day}/day)")

    person = raw[0]
    print(f"\nfirst 5 answered beeps of {person.identifier} "
          f"(Likert 1-7, first 8 items):")
    for row in person.values[:5, :8]:
        print("  " + "  ".join(f"{int(v)}" for v in row))
    rare_idx = [person.variable_names.index(n) for n in LOW_VARIANCE_NAMES]
    print(f"rare-symptom items std: "
          + ", ".join(f"{person.variable_names[i]}={person.values[:, i].std():.2f}"
                      for i in rare_idx))

    print("\n=== preprocessing (paper section IV) ===")
    clean, report = PreprocessingPipeline(min_compliance=0.5,
                                          max_individuals=10).run(raw)
    print(f"  {report}")
    for key, value in clean.summary().items():
        print(f"  {key}: {value}")

    print("\n=== signal anatomy (per kept individual) ===")
    print(f"{'id':6s} {'T':>4s} {'lag-1 autocorr':>15s} {'graph recovery':>15s}")
    for ind in clean:
        values = ind.values
        autocorr = np.mean([np.corrcoef(values[:-1, j], values[1:, j])[0, 1]
                            for j in range(values.shape[1])])
        recovery = graph_correlation(correlation_adjacency(values),
                                     ind.ground_truth_graph)
        print(f"{ind.identifier:6s} {ind.num_time_points:4d} "
              f"{autocorr:15.2f} {recovery:15.2f}")

    print("\nEmotional inertia (positive lag-1 autocorrelation) is what the "
          "forecasters exploit;\nthe correlation graph partially recovers each "
          "individual's true interaction structure,\nwhich is why "
          "similarity-based graphs help the GNNs (paper sections III-D, VI).")


if __name__ == "__main__":
    main()
