#!/usr/bin/env python3
"""Quickstart: forecast one synthetic participant's EMA variables.

Walks the whole public API end to end:

1. generate a synthetic EMA cohort and preprocess it (compliance filter,
   low-variance filter, per-individual normalization);
2. build the participant's correlation graph from the training segment;
3. train MTGNN (graph learning warm-started from that graph) on the first
   70 % of the recording;
4. evaluate 1-lag forecasts on the last 30 % and compare against the naive
   mean predictor and an LSTM baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.autodiff as ad
from repro.data import PreprocessingPipeline, SynthesisConfig, generate_cohort, split_windows
from repro.graphs import build_adjacency, summarize
from repro.models import create_model
from repro.training import Trainer, TrainerConfig

ad.set_default_dtype(np.float32)  # 2x faster; float64 is the strict default

SEQ_LEN = 5


def main() -> None:
    # 1. Data -----------------------------------------------------------
    raw = generate_cohort(SynthesisConfig(num_individuals=10, seed=7))
    cohort, report = PreprocessingPipeline(min_compliance=0.5,
                                           max_individuals=3).run(raw)
    print(f"preprocessing: {report}")
    participant = cohort[0]
    print(f"participant {participant.identifier}: "
          f"{participant.num_time_points} time points x "
          f"{participant.num_variables} variables "
          f"(compliance {participant.compliance:.0%})")

    # 2. Graph ----------------------------------------------------------
    split = split_windows(participant.values, SEQ_LEN, train_fraction=0.7)
    train_segment = participant.values[:split.boundary]
    graph = build_adjacency(train_segment, "correlation", gdt=0.2)
    print(f"correlation graph (GDT=20%): {summarize(graph)}")

    # 3. Train ----------------------------------------------------------
    trainer = Trainer(TrainerConfig(epochs=60))
    scores = {}
    for name in ("lstm", "mtgnn"):
        model = create_model(name, participant.num_variables, SEQ_LEN,
                             adjacency=graph, seed=1)
        history = trainer.fit(model, split.train)
        scores[name] = Trainer.evaluate(model, split.test)
        print(f"{name}: train loss {history.losses[0]:.3f} -> "
              f"{history.final_loss:.3f} over {history.epochs} epochs")

    # 4. Compare --------------------------------------------------------
    naive = float(np.mean(split.test.targets.astype(np.float64) ** 2))
    print("\n1-lag test MSE (lower is better):")
    print(f"  naive mean predictor : {naive:.3f}")
    print(f"  LSTM baseline        : {scores['lstm']:.3f}")
    print(f"  MTGNN (graph learned): {scores['mtgnn']:.3f}")
    if scores["mtgnn"] < scores["lstm"]:
        print("MTGNN beats the LSTM baseline — the paper's headline result.")


if __name__ == "__main__":
    main()
