#!/usr/bin/env python3
"""Quickstart: fit, persist and serve personalized EMA forecasts.

Walks the stable facade (:mod:`repro.api`) end to end:

1. generate a synthetic EMA cohort and preprocess it (compliance filter,
   low-variance filter, per-individual normalization);
2. ``repro.fit_cohort`` — one model + one correlation graph per
   individual, trained on the first 70 % of each recording (the paper's
   personalized setup);
3. ``handle.save`` / ``repro.load`` — round-trip the fitted cohort
   through a versioned, content-addressed model store;
4. ``handle.forecast`` — serve next-step forecasts through the batched
   inference engine, bit-identical to in-process prediction.

Run:  python examples/quickstart.py
"""

import tempfile

import numpy as np

import repro
import repro.autodiff as ad
from repro.data import PreprocessingPipeline, SynthesisConfig, generate_cohort
from repro.training import TrainerConfig

ad.set_default_dtype(np.float32)  # 2x faster; float64 is the strict default

SEQ_LEN = 5


def main() -> None:
    # 1. Data -----------------------------------------------------------
    raw = generate_cohort(SynthesisConfig(num_individuals=10, seed=7))
    cohort, report = PreprocessingPipeline(min_compliance=0.5,
                                           max_individuals=3).run(raw)
    print(f"preprocessing: {report}")
    for participant in cohort:
        print(f"  participant {participant.identifier}: "
              f"{participant.num_time_points} time points x "
              f"{participant.num_variables} variables "
              f"(compliance {participant.compliance:.0%})")

    # 2. Fit: one model + one graph per individual ----------------------
    handle = repro.fit_cohort(cohort, "tgcn", SEQ_LEN,
                              graph_method="correlation", gdt=0.2,
                              trainer_config=TrainerConfig(epochs=60),
                              seed=1)
    print("\nper-individual 1-lag test MSE (lower is better):")
    for result in handle.results:
        print(f"  {result.identifier}: {result.test_mse:.3f}")

    # 3. Persist + reload through the versioned model store -------------
    with tempfile.TemporaryDirectory() as store_dir:
        version = handle.save(store_dir)
        print(f"\nsaved to {store_dir} as version {version}")
        served = repro.load(store_dir, version)

        # 4. Serve: batched engine, bit-identical to in-process predict -
        print("next-step forecasts from each individual's stored tail:")
        for identifier in served.individuals:
            forecast = served.forecast(identifier)
            fresh = handle.forecast(identifier)
            assert np.array_equal(forecast, fresh), "store round-trip drifted"
            preview = ", ".join(f"{v:+.2f}" for v in forecast[:4])
            print(f"  {identifier}: [{preview}, ...] "
                  f"({forecast.shape[0]} variables)")
    print("round-trip forecasts are bitwise identical — weights, graphs "
          "and dtype all survived the store.")


if __name__ == "__main__":
    main()
